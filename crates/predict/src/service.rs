//! The serving layer: a thread-safe, read-optimized front end to the model
//! repository.
//!
//! The paper's repository is a long-lived asset: models are built once and
//! then answer many downstream queries.  [`ModelService`] is the concurrent
//! embodiment of that shape:
//!
//! * it shares the repository behind a
//!   [`SharedRepository`](dla_model::SharedRepository), so any number of
//!   threads can take consistent snapshots and obtain [`Predictor`]s while a
//!   freshly rebuilt repository is hot-swapped in underneath them;
//! * it memoizes repeated `(routine, flags, sizes)` evaluations behind a
//!   sharded cache — algorithm traces re-evaluate the same calls constantly
//!   (every iteration of a blocked algorithm issues the same small set of
//!   distinct calls), so a warm cache answers most queries without touching
//!   the polynomial evaluator;
//! * cache *misses* — the cold path — run on the compiled evaluation engine
//!   ([`CompiledRepository`](dla_model::CompiledRepository)): repositories
//!   are compiled once per swap/merge inside the shared handle, so even the
//!   first evaluation of a call is an indexed, allocation-free lookup;
//! * it keeps lightweight **refinement telemetry**: the compiled evaluators
//!   report which `(routine, flags, region)` cell answered each query, and
//!   the service counts queries per cell with relaxed atomics (near-zero
//!   overhead, lock-free on the counting itself).
//!   [`refinement_report`](ModelService::refinement_report) snapshots the
//!   counters into a [`RefinementReport`] ranked by `queries × fit_error` —
//!   the input an online refiner needs to re-sample exactly where serving
//!   traffic meets model error.  Counters are scoped to one repository
//!   generation and restart after every swap/merge, so a freshly published
//!   region starts with a clean slate.
//!
//! The service is `Sync`: wrap it in an `Arc` and clone the handle into as
//! many threads as needed.
//!
//! All concurrency primitives come from the `dla_sync` facade
//! ([`dla_model::sync`]): under `--cfg interleave` they become the vendored
//! model checker's shims, and `tests/interleave_service.rs` exhaustively
//! explores this file's races (racing resolvers, counter reset on swap,
//! telemetry toggles).  The facade's locks are non-poisoning: every critical
//! section here replaces or inserts whole values (shard entries, the resolver
//! slot), so recovering from a panicked holder serves consistent — at worst
//! slightly stale — data instead of unwinding the serving tier.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use dla_blas::flops::is_empty_call;
use dla_blas::{Call, Routine};
use dla_machine::{Locality, MachineConfig};
use dla_mat::stats::Summary;
// Concurrency primitives come from the `dla_sync` facade (model-checked
// under `--cfg interleave`, non-poisoning locks); `dla-lint` enforces that
// this file never reaches for `std::sync` directly.
use dla_model::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use dla_model::sync::{Arc, RwLock};
use dla_model::{
    submodel_key, submodel_key_fixed, BatchPoints, FlagKey, HotRegion, ModelError, ModelRepository,
    RefinementReport, Region, RepositoryValidator, SharedRepository, TelemetryCounters, MAX_DIM,
};
use dla_modeler::RefineOutcome;

use crate::health::{HealthCounters, ServiceHealth};
use crate::predictor::{EfficiencyPrediction, Predictor, TraceEvaluator, TracePrediction};

/// Number of cache shards when none is given: enough to keep writer
/// contention negligible at typical thread counts.
const DEFAULT_SHARDS: usize = 16;

/// The model parameters a cached estimate depends on.  Scalars and leading
/// dimensions are deliberately absent — the models drop them too.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CallKey {
    routine: Routine,
    flags: Vec<usize>,
    sizes: Vec<usize>,
}

impl CallKey {
    fn new(call: &Call) -> CallKey {
        CallKey {
            routine: call.routine(),
            flags: submodel_key(call),
            sizes: call.sizes(),
        }
    }

    fn shard(&self, shards: usize) -> usize {
        let mut hasher = DefaultHasher::new();
        self.hash(&mut hasher);
        (hasher.finish() as usize) % shards
    }
}

/// Hit/miss counters of the service's evaluation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Evaluations answered from the cache.
    pub hits: u64,
    /// Evaluations that had to consult the models.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of evaluations answered from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A memoized evaluation: the repository generation it belongs to, the
/// summary, and a handle on the answering region's telemetry counter — so a
/// cache *hit* keeps feeding the per-region query counts with one relaxed
/// increment and nothing else (no extra lock, no lookup).
#[derive(Debug, Clone)]
struct CachedPrediction {
    generation: u64,
    summary: Summary,
    counter: Option<Arc<AtomicU64>>,
}

type Shard = RwLock<HashMap<CallKey, CachedPrediction>>;

/// Static metadata of one telemetry cell: the `(routine, flags, region)`
/// identity a query counter belongs to, plus the region's recorded fit error
/// and provenance at resolve time.
struct TelemetryCell {
    routine: Routine,
    flags: Vec<usize>,
    region: Region,
    error: f64,
    revision: u32,
}

/// Per-generation refinement telemetry: one relaxed atomic query counter per
/// region served for this machine/locality, plus the slot layout that maps a
/// traced evaluation `(routine, flag key, region index)` to its counter.
/// Counters are individually `Arc`'d so cache entries can hold a direct
/// handle on theirs, keeping the cache-hit path a single relaxed increment.
struct Telemetry {
    /// Per routine (indexed by [`Routine::index`]): the flag keys of its
    /// submodels with each key's base slot and region count.
    index: Vec<Vec<(FlagKey, u32, u32)>>,
    counters: TelemetryCounters,
    cells: Vec<TelemetryCell>,
}

impl Telemetry {
    /// Builds the slot layout for every region the snapshot serves under
    /// `machine_id`/`locality`.  Runs once per repository generation (at the
    /// same point the routing table is resolved), never on the query path.
    fn build(snapshot: &ModelRepository, machine_id: &str, locality: Locality) -> Telemetry {
        let mut index: Vec<Vec<(FlagKey, u32, u32)>> = vec![Vec::new(); Routine::ALL.len()];
        let mut cells: Vec<TelemetryCell> = Vec::new();
        for (key, model) in snapshot.iter() {
            if key.machine_id != machine_id || key.locality != locality.name() {
                continue;
            }
            let Some(routine) = Routine::from_name(&key.routine) else {
                continue;
            };
            // Deterministic layout: sorted flag keys, regions in source order
            // (the order both the compiled and the reference evaluators
            // report their region indices in).
            let mut flag_keys: Vec<&Vec<usize>> = model.submodels.keys().collect();
            flag_keys.sort();
            for flags in flag_keys {
                let Some(fixed) = FlagKey::from_slice(flags) else {
                    continue;
                };
                // lint: allow(panic-free): the key was just drawn from this map's keys
                let submodel = &model.submodels[flags];
                // lint: allow(panic-free): routine.index() < Routine::ALL.len(), the vec's length
                index[routine.index()].push((
                    fixed,
                    cells.len() as u32,
                    submodel.regions.len() as u32,
                ));
                for region in &submodel.regions {
                    cells.push(TelemetryCell {
                        routine,
                        flags: flags.clone(),
                        region: region.region.clone(),
                        error: region.error,
                        revision: region.revision,
                    });
                }
            }
        }
        let counters = TelemetryCounters::new(cells.len());
        Telemetry {
            index,
            counters,
            cells,
        }
    }

    /// The counter of a traced evaluation's cell, if the layout covers it.
    fn counter(&self, routine: Routine, key: FlagKey, region: u32) -> Option<&Arc<AtomicU64>> {
        // lint: allow(panic-free): routine.index() < Routine::ALL.len(), the vec's length
        self.index[routine.index()]
            .iter()
            .find(|(k, _, count)| *k == key && region < *count)
            .and_then(|(_, base, _)| self.counters.handle((base + region) as usize))
    }
}

/// The service's pre-resolved evaluation state for one repository
/// generation: the compiled snapshot together with its machine/locality
/// routing table (so the cache-miss path is a plain array index — no string
/// comparison, no allocation) and the generation's telemetry counters.
struct Resolved {
    generation: u64,
    compiled: Arc<dla_model::CompiledRepository>,
    table: dla_model::RoutineTable,
    telemetry: Arc<Telemetry>,
}

/// A thread-safe prediction service over a hot-swappable model repository.
pub struct ModelService {
    shared: SharedRepository,
    machine: MachineConfig,
    locality: Locality,
    shards: Vec<Shard>,
    resolved: RwLock<Option<Resolved>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Gates the per-query telemetry counting (the slot bookkeeping itself is
    /// always maintained, so telemetry can be flipped on without a rebuild).
    telemetry_enabled: AtomicBool,
    /// Pre-publication gate: every swap/merge validates the incoming models
    /// before they can reach readers (see [`RepositoryValidator`]).
    validator: RepositoryValidator,
    /// The degraded-serving ledger behind [`health`](ModelService::health).
    health: HealthCounters,
}

impl ModelService {
    /// Creates a service over a repository, for one machine and locality.
    pub fn new(
        repository: ModelRepository,
        machine: MachineConfig,
        locality: Locality,
    ) -> ModelService {
        ModelService::with_shards(repository, machine, locality, DEFAULT_SHARDS)
    }

    /// Creates a service with an explicit cache shard count.
    pub fn with_shards(
        repository: ModelRepository,
        machine: MachineConfig,
        locality: Locality,
        shards: usize,
    ) -> ModelService {
        let shared = SharedRepository::new(repository);
        // The constructor-supplied repository is trusted (it is typically the
        // service's own offline build, and an intentionally empty service is
        // legitimate); validation gates *publications* — see
        // [`swap`](ModelService::swap).
        let initial_generation = shared.generation();
        ModelService {
            shared,
            machine,
            locality,
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            resolved: RwLock::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            telemetry_enabled: AtomicBool::new(true),
            validator: RepositoryValidator::new(),
            health: HealthCounters::new(initial_generation),
        }
    }

    /// The compiled snapshot and routing table for `generation`, from the
    /// resolver cache when fresh, re-resolved (and re-cached) after a
    /// swap/merge.  The returned pair is always internally consistent (the
    /// table was computed from that exact compiled snapshot).
    fn resolved(
        &self,
        generation: u64,
    ) -> (
        Arc<dla_model::CompiledRepository>,
        dla_model::RoutineTable,
        Arc<Telemetry>,
    ) {
        if let Some(r) = self.resolved.read().as_ref() {
            if r.generation == generation {
                return (Arc::clone(&r.compiled), r.table, Arc::clone(&r.telemetry));
            }
        }
        let compiled = self.shared.compiled();
        let machine_id = self.machine.id();
        let table = compiled.resolve(&machine_id, self.locality);
        let telemetry = Arc::new(Telemetry::build(
            compiled.source(),
            &machine_id,
            self.locality,
        ));
        // Only cache when no swap happened since the caller observed
        // `generation`; a racing entry must not outlive the swap.
        if self.shared.generation() == generation {
            let mut guard = self.resolved.write();
            // Re-check under the write lock: a racing resolver may have
            // installed this generation already.  Its state must win —
            // overwriting it would orphan every counter handle (and count)
            // the other thread's cache entries already carry, silently
            // dropping those regions from all future reports.
            if let Some(r) = guard.as_ref() {
                if r.generation == generation {
                    return (Arc::clone(&r.compiled), r.table, Arc::clone(&r.telemetry));
                }
            }
            *guard = Some(Resolved {
                generation,
                compiled: Arc::clone(&compiled),
                table,
                telemetry: Arc::clone(&telemetry),
            });
        }
        (compiled, table, telemetry)
    }

    /// The machine configuration predictions refer to.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The memory-locality scenario of the served models.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// A consistent snapshot of the current repository.
    pub fn snapshot(&self) -> Arc<ModelRepository> {
        self.shared.snapshot()
    }

    /// Atomically replaces the repository (hot swap), returning the previous
    /// one.  In-flight predictors keep their snapshot; cached evaluations are
    /// invalidated.
    ///
    /// The cache is invalidated *before* the generation bump, not after.
    /// Invalidating afterwards opens a window the model checker caught (see
    /// `tests/interleave_service.rs`, `swap_racing_predict_never_orphans_telemetry`):
    /// a query racing the swap can observe the new generation and install its
    /// resolver state — counter block included — only for the trailing
    /// invalidation to wipe it while the query's cache entry keeps a handle
    /// on the now-orphaned counters, silently dropping those queries from
    /// every future refinement report.  Cleared-then-bumped, anything a
    /// racing query installs either carries the old generation (dead on
    /// arrival once the bump lands: the tag mismatch makes it a plain miss)
    /// or legitimately belongs to the new generation and survives.
    /// Every publication passes the [`RepositoryValidator`] first: a
    /// repository carrying non-finite coefficients, empty submodels or a
    /// degenerate region cover is **rejected** — the service keeps serving
    /// the previous generation, the rejection is accounted in
    /// [`health`](ModelService::health), and the caller gets the validation
    /// error back.  (An intentionally *empty* repository is a valid
    /// publication: it clears the service.)
    pub fn swap(&self, repository: ModelRepository) -> dla_model::Result<Arc<ModelRepository>> {
        if let Err(e) = self.validator.validate(&repository) {
            self.health.record_rejected();
            return Err(e);
        }
        self.clear_cache();
        let previous = self.shared.swap(repository);
        self.health.record_accepted(self.shared.generation());
        Ok(previous)
    }

    /// Merges freshly built models into the served repository (hot swap).
    ///
    /// Invalidation precedes the generation bump for the same reason as in
    /// [`swap`](ModelService::swap), and the incoming delta passes the same
    /// pre-publication validation: a rejected delta changes nothing — the
    /// served generation, its cache and its telemetry all stay in place.
    pub fn merge(&self, other: ModelRepository) -> dla_model::Result<()> {
        if let Err(e) = self.validator.validate(&other) {
            self.health.record_rejected();
            return Err(e);
        }
        self.clear_cache();
        self.shared.merge(other);
        self.health.record_accepted(self.shared.generation());
        Ok(())
    }

    /// Atomically replaces the repository with an **already compiled** one —
    /// the zero-recompilation hot-swap entry the binary loader feeds (a
    /// `.dlapb` shard deserializes straight into its compiled form; see
    /// [`dla_model::binfmt`]).  Returns the previous source repository.
    ///
    /// Invalidation precedes the generation bump for the same reason as in
    /// [`swap`](ModelService::swap), and the compiled repository's source is
    /// validated like any other publication (binary shards come from disk —
    /// exactly where corruption enters).
    pub fn swap_compiled(
        &self,
        compiled: Arc<dla_model::CompiledRepository>,
    ) -> dla_model::Result<Arc<ModelRepository>> {
        if let Err(e) = self.validator.validate(compiled.source()) {
            self.health.record_rejected();
            return Err(e);
        }
        self.clear_cache();
        let previous = self.shared.swap_compiled(compiled);
        self.health.record_accepted(self.shared.generation());
        Ok(previous)
    }

    /// A point-in-time snapshot of the service's fault-tolerance ledger:
    /// the last accepted generation, accepted/rejected publication counts,
    /// and the refinement loop's quarantine and sampling-fault statistics
    /// (see [`record_refinement`](ModelService::record_refinement)).
    pub fn health(&self) -> ServiceHealth {
        self.health.snapshot()
    }

    /// Records a failed serving-tier query against this service's health
    /// ledger — a shard call that errored, returned a corrupt reply, or
    /// found the shard unavailable.  The fleet's query path calls this; the
    /// counter feeds the shard's circuit breaker alongside the publication
    /// and quarantine statistics.
    pub fn record_query_error(&self) {
        self.health.record_query_error();
    }

    /// Records a serving-tier query that overran its deadline against this
    /// service's health ledger.
    pub fn record_query_timeout(&self) {
        self.health.record_query_timeout();
    }

    /// The generation of the currently served repository — the tag fleet
    /// callers pair with [`compiled_snapshot`](ModelService::compiled_snapshot)
    /// when retaining a last-good fallback.
    pub fn generation(&self) -> u64 {
        self.shared.generation()
    }

    /// Folds one refinement round's [`RefineOutcome`] into the health
    /// ledger (quarantined-region count, recoveries, fit failures, sampler
    /// retry/discard totals).  The refinement loop calls this once per round,
    /// next to the merge of the round's delta.
    pub fn record_refinement(&self, outcome: &RefineOutcome) {
        self.health.record_refinement(outcome);
    }

    /// The current compiled snapshot, as a cheap `Arc` clone — what binary
    /// persistence encodes without recompiling anything.
    pub fn compiled_snapshot(&self) -> Arc<dla_model::CompiledRepository> {
        self.shared.compiled()
    }

    /// A predictor over the current snapshot.
    ///
    /// The predictor owns its snapshot (`'static`), so it can be handed to
    /// other threads and outlives later [`swap`](ModelService::swap)s.  The
    /// snapshot is already compiled (compilation happened at the last
    /// swap/merge), so this is cheap.
    pub fn predictor(&self) -> Predictor<'static> {
        Predictor::from_compiled(self.shared.compiled(), self.machine.clone(), self.locality)
    }

    /// Predicts the performance of a single call, memoized.
    // lint: panic-free
    pub fn predict_call(&self, call: &Call) -> dla_model::Result<Summary> {
        let key = CallKey::new(call);
        // lint: allow(panic-free): CallKey::shard reduces modulo the shard count
        let shard = &self.shards[key.shard(self.shards.len())];
        let generation = self.shared.generation();
        if let Some(cached) = shard.read().get(&key) {
            if cached.generation == generation {
                // ordering: Relaxed — hit/miss totals are standalone
                // statistics; nothing is published through them.
                self.hits.fetch_add(1, Ordering::Relaxed);
                // The entry carries its region's counter: telemetry on the
                // hit path is one lossy relaxed increment, nothing else (see
                // `TelemetryCounters::bump_lossy` for why not an RMW).
                // ordering: Relaxed — the flag gates a best-effort statistic;
                // a toggle may take effect a query late, by design.
                if self.telemetry_enabled.load(Ordering::Relaxed) {
                    if let Some(counter) = &cached.counter {
                        TelemetryCounters::bump_lossy(counter);
                    }
                }
                return Ok(cached.summary);
            }
        }
        // ordering: Relaxed — same standalone-statistic reasoning as `hits`.
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Cache miss: evaluate on the compiled engine through the cached
        // routing table (the snapshot was compiled at the last swap/merge
        // and the table resolved once per generation, so the cold path does
        // no compilation, no hashing and no string comparison).
        let (compiled, table, telemetry) = self.resolved(generation);
        let model = table
            .slot(call.routine())
            .map(|slot| compiled.model_at(slot))
            .ok_or_else(|| {
                crate::predictor::missing_model_error(
                    call.routine(),
                    &self.machine.id(),
                    self.locality,
                )
            })?;
        // Traced evaluation: same work as `estimate`, plus the identity of
        // the answering submodel/region, which resolves to a counter handle
        // once here and rides along in the cache entry for all later hits.
        let (summary, flag_key, region) = model.estimate_traced(call)?;
        let counter = telemetry.counter(call.routine(), flag_key, region).cloned();
        // ordering: Relaxed — see the hit path; the cold path uses the exact
        // RMW increment because it already pays a model evaluation.
        if self.telemetry_enabled.load(Ordering::Relaxed) {
            if let Some(counter) = &counter {
                TelemetryCounters::bump_exact(counter);
            }
        }
        // Only cache if no swap happened while we evaluated; a racing entry
        // from a stale snapshot must not survive the swap's invalidation.
        if self.shared.generation() == generation {
            shard.write().insert(
                key,
                CachedPrediction {
                    generation,
                    summary,
                    counter,
                },
            );
        }
        Ok(summary)
    }

    /// Returns `true` while per-query refinement telemetry is being counted.
    pub fn telemetry_enabled(&self) -> bool {
        // ordering: Relaxed — the flag is an independent on/off switch; no
        // other memory is published through it.
        self.telemetry_enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables per-query telemetry counting.  Disabling removes
    /// the per-query counter increment (the slot bookkeeping in the cache is
    /// kept, so re-enabling takes effect immediately, warm cache included).
    pub fn set_telemetry_enabled(&self, enabled: bool) {
        // ordering: Relaxed — concurrent `predict_call`s may count (or skip)
        // a query that straddles the toggle; either outcome is a valid
        // serialization, asserted by the model test in
        // `tests/interleave_service.rs`.
        self.telemetry_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Snapshots the current generation's telemetry into a ranked
    /// [`RefinementReport`]: every `(routine, flags, region)` cell that
    /// answered at least one query since the served repository generation was
    /// installed, hottest (`queries × fit_error`, `NaN` first) first.
    ///
    /// Producing the report does not pause serving — it reads the relaxed
    /// counters in place.  The report is empty when nothing was queried since
    /// the last swap/merge (counters are per-generation by design: a rebuilt
    /// region must re-earn its place in the next report).
    pub fn refinement_report(&self) -> RefinementReport {
        let generation = self.shared.generation();
        let guard = self.resolved.read();
        let Some(resolved) = guard.as_ref().filter(|r| r.generation == generation) else {
            return RefinementReport::empty(self.machine.id(), self.locality, generation);
        };
        let telemetry = &resolved.telemetry;
        let mut total_queries = 0u64;
        let mut cells = Vec::new();
        for (slot, cell) in telemetry.cells.iter().enumerate() {
            let queries = telemetry.counters.count(slot);
            total_queries += queries;
            if queries > 0 {
                cells.push(HotRegion {
                    routine: cell.routine,
                    flags: cell.flags.clone(),
                    region: cell.region.clone(),
                    fit_error: cell.error,
                    revision: cell.revision,
                    queries,
                });
            }
        }
        RefinementReport::ranked(
            self.machine.id(),
            self.locality,
            generation,
            total_queries,
            cells,
        )
    }

    /// Predicts a whole trace by accumulating memoized per-call estimates
    /// (see [`TraceEvaluator::predict_trace`]).
    pub fn predict_trace(&self, trace: &[Call]) -> dla_model::Result<TracePrediction> {
        TraceEvaluator::predict_trace(self, trace)
    }

    /// Predicts a batch of traces, memoized per call (see
    /// [`TraceEvaluator::predict_traces`]).
    ///
    /// Cache-cold calls are grouped by (routine, flag key, arity) and
    /// evaluated through the compiled engine's SoA batch kernel instead of
    /// one at a time; hit/miss statistics, telemetry counting and cache
    /// population behave exactly as a call-by-call walk would.
    pub fn predict_traces(&self, traces: &[&[Call]]) -> dla_model::Result<Vec<TracePrediction>> {
        self.predict_traces_batched(traces)
    }

    /// The batched trace path behind [`predict_traces`].  One pass places
    /// every call (cache hit, batch-duplicate, or pending group member), one
    /// batched evaluation per group answers the cold calls, then telemetry /
    /// cache bookkeeping and per-trace accumulation run in original order.
    ///
    /// [`predict_traces`]: ModelService::predict_traces
    fn predict_traces_batched(
        &self,
        traces: &[&[Call]],
    ) -> dla_model::Result<Vec<TracePrediction>> {
        /// Where a call's estimate comes from.
        enum Place {
            /// Degenerate call, skipped at zero cost.
            Skip,
            /// Answered from the memo cache (or an earlier batch duplicate).
            Ready(Summary),
            /// Awaiting the group evaluation; index into `pending`.
            Pending(usize),
        }
        /// One cache-cold call awaiting its group's batched evaluation.
        struct PendingEntry {
            key: CallKey,
            group: usize,
            index: usize,
            /// Later occurrences of the same key in this batch, deduplicated
            /// onto this evaluation; they count as cache hits and owe the
            /// telemetry counter one lossy bump each.
            extra_hits: u64,
        }
        /// Calls sharing (routine, flag key, arity): one flat column store,
        /// answered by one batched submodel evaluation.
        struct Group {
            slot: usize,
            routine: Routine,
            flag_key: FlagKey,
            dim: usize,
            points: BatchPoints,
            summaries: Vec<Summary>,
            regions: Vec<u32>,
        }
        /// Batch-local dedup state for one call key.
        enum Seen {
            Ready(Summary, Option<Arc<AtomicU64>>),
            Pending(usize),
        }

        let generation = self.shared.generation();
        let mut resolved = None;
        let mut groups: Vec<Group> = Vec::new();
        let mut pending: Vec<PendingEntry> = Vec::new();
        let mut seen: HashMap<CallKey, Seen> = HashMap::new();
        let mut placements: Vec<Vec<Place>> = Vec::with_capacity(traces.len());

        for trace in traces {
            let mut places = Vec::with_capacity(trace.len());
            for call in *trace {
                if is_empty_call(call) {
                    places.push(Place::Skip);
                    continue;
                }
                let key = CallKey::new(call);
                // Batch-local dedup first: a repeated key is a cache hit
                // whether its first occurrence was itself a hit or is still
                // pending (a call-by-call walk would find the entry the
                // first miss inserted).
                if let Some(s) = seen.get(&key) {
                    // ordering: Relaxed — hit/miss totals are standalone
                    // statistics; nothing is published through them.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    match s {
                        Seen::Ready(summary, counter) => {
                            // ordering: Relaxed — the flag gates a
                            // best-effort statistic (see `predict_call`).
                            if self.telemetry_enabled.load(Ordering::Relaxed) {
                                if let Some(counter) = counter {
                                    TelemetryCounters::bump_lossy(counter);
                                }
                            }
                            places.push(Place::Ready(*summary));
                        }
                        Seen::Pending(pi) => {
                            pending[*pi].extra_hits += 1;
                            places.push(Place::Pending(*pi));
                        }
                    }
                    continue;
                }
                let shard = &self.shards[key.shard(self.shards.len())];
                let cached = shard.read().get(&key).and_then(|cached| {
                    (cached.generation == generation)
                        .then(|| (cached.summary, cached.counter.clone()))
                });
                if let Some((summary, counter)) = cached {
                    // ordering: Relaxed — standalone statistic, as above.
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    // ordering: Relaxed — best-effort statistic gate.
                    if self.telemetry_enabled.load(Ordering::Relaxed) {
                        if let Some(counter) = &counter {
                            TelemetryCounters::bump_lossy(counter);
                        }
                    }
                    places.push(Place::Ready(summary));
                    seen.insert(key, Seen::Ready(summary, counter));
                    continue;
                }
                // ordering: Relaxed — standalone statistic, as above.
                self.misses.fetch_add(1, Ordering::Relaxed);
                let (compiled, table, _) =
                    resolved.get_or_insert_with(|| self.resolved(generation));
                let slot = table.slot(call.routine()).ok_or_else(|| {
                    crate::predictor::missing_model_error(
                        call.routine(),
                        &self.machine.id(),
                        self.locality,
                    )
                })?;
                let model = compiled.model_at(slot);
                let flag_key = submodel_key_fixed(call);
                if !model.has_submodel(flag_key) {
                    // Reproduce the exact pointwise error (with the call's
                    // flag characters) by asking the scalar path.
                    return match model.estimate(call) {
                        Err(e) => Err(e),
                        Ok(_) => Err(ModelError::MissingSubmodel(format!(
                            "submodel for {} appeared mid-batch",
                            call.routine()
                        ))),
                    };
                }
                let (sizes, len) = call.sizes_fixed();
                let mut clamped = [0usize; MAX_DIM];
                model.clamp_sizes(&sizes[..len], &mut clamped);
                let group = match groups
                    .iter()
                    .position(|g| g.slot == slot && g.flag_key == flag_key && g.dim == len)
                {
                    Some(g) => g,
                    None => {
                        groups.push(Group {
                            slot,
                            routine: call.routine(),
                            flag_key,
                            dim: len,
                            points: BatchPoints::new(len),
                            summaries: Vec::new(),
                            regions: Vec::new(),
                        });
                        groups.len() - 1
                    }
                };
                let index = groups[group].points.len();
                groups[group].points.push(&clamped[..len]);
                pending.push(PendingEntry {
                    key: key.clone(),
                    group,
                    index,
                    extra_hits: 0,
                });
                seen.insert(key, Seen::Pending(pending.len() - 1));
                places.push(Place::Pending(pending.len() - 1));
            }
            placements.push(places);
        }

        // One batched evaluation per group, on the compiled engine.
        if let Some((compiled, _, _)) = &resolved {
            for g in &mut groups {
                compiled.model_at(g.slot).estimate_batch_clamped(
                    g.flag_key,
                    &g.points,
                    &mut g.summaries,
                    Some(&mut g.regions),
                )?;
            }
        }

        // Telemetry and cache population for the cold calls, exactly as the
        // scalar miss path would have done them one at a time.
        if let Some((_, _, telemetry)) = &resolved {
            for entry in &pending {
                let g = &groups[entry.group];
                let summary = g.summaries[entry.index];
                let region = g.regions[entry.index];
                let counter = telemetry.counter(g.routine, g.flag_key, region).cloned();
                // ordering: Relaxed — best-effort statistic gate, as above.
                if self.telemetry_enabled.load(Ordering::Relaxed) {
                    if let Some(counter) = &counter {
                        // The cold evaluation counts exactly; its batch
                        // duplicates count lossily, like cache hits do.
                        TelemetryCounters::bump_exact(counter);
                        for _ in 0..entry.extra_hits {
                            TelemetryCounters::bump_lossy(counter);
                        }
                    }
                }
                // Only cache if no swap happened while we evaluated; a
                // racing entry from a stale snapshot must not survive the
                // swap's invalidation (see `predict_call`).
                if self.shared.generation() == generation {
                    let shard = &self.shards[entry.key.shard(self.shards.len())];
                    shard.write().insert(
                        entry.key.clone(),
                        CachedPrediction {
                            generation,
                            summary,
                            counter,
                        },
                    );
                }
            }
        }

        // Accumulate per trace in original call order.
        let mut out = Vec::with_capacity(traces.len());
        for (trace, places) in traces.iter().zip(&placements) {
            let mut ticks = Summary::zero();
            let mut flops = 0.0;
            let mut predicted = 0;
            let mut skipped = 0;
            for (call, place) in trace.iter().zip(places) {
                let summary = match place {
                    Place::Skip => {
                        skipped += 1;
                        continue;
                    }
                    Place::Ready(summary) => summary,
                    Place::Pending(pi) => {
                        let entry = &pending[*pi];
                        &groups[entry.group].summaries[entry.index]
                    }
                };
                ticks.accumulate(summary);
                flops += call.flops();
                predicted += 1;
            }
            out.push(TracePrediction {
                ticks,
                flops,
                predicted_calls: predicted,
                skipped_calls: skipped,
            });
        }
        Ok(out)
    }

    /// Predicts the efficiency of a trace for an operation with the given
    /// useful flop count (memoized per call).
    pub fn predict_efficiency(
        &self,
        trace: &[Call],
        useful_flops: f64,
    ) -> dla_model::Result<EfficiencyPrediction> {
        TraceEvaluator::predict_efficiency(self, trace, useful_flops)
    }

    /// Hit/miss counters of the evaluation cache.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            // ordering: Relaxed on both — independent statistics; a reader
            // racing an increment sees a momentarily stale total, which is
            // what a statistics snapshot means.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently cached across all shards.
    pub fn cached_evaluations(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Drops every cached evaluation and the resolver cache (the hit/miss
    /// counters are kept).  Called on swap/merge, which also releases the
    /// resolver's reference to the previous compiled snapshot.
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        *self.resolved.write() = None;
    }
}

impl TraceEvaluator for ModelService {
    fn machine(&self) -> &MachineConfig {
        ModelService::machine(self)
    }

    fn predict_call(&self, call: &Call) -> dla_model::Result<Summary> {
        ModelService::predict_call(self, call)
    }

    fn predict_traces(&self, traces: &[&[Call]]) -> dla_model::Result<Vec<TracePrediction>> {
        self.predict_traces_batched(traces)
    }
}

impl std::fmt::Debug for ModelService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelService")
            .field("machine", &self.machine.id())
            .field("locality", &self.locality)
            .field("models", &self.snapshot().len())
            .field("shards", &self.shards.len())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_repository, ModelSetConfig, Workload};
    use dla_blas::Trans;
    use dla_machine::presets::harpertown_openblas;

    fn quick_service() -> ModelService {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(128);
        let (repo, _) = build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
        ModelService::new(repo, machine, Locality::InCache)
    }

    fn gemm(n: usize) -> Call {
        Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n.min(64), 1.0, 1.0)
    }

    #[test]
    fn service_is_sync_and_send() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ModelService>();
    }

    #[test]
    fn memoized_predictions_match_the_predictor() {
        let service = quick_service();
        let predictor = service.predictor();
        let call = gemm(96);
        let direct = predictor.predict_call(&call).unwrap();
        let first = service.predict_call(&call).unwrap();
        let second = service.predict_call(&call).unwrap();
        assert_eq!(first, direct);
        assert_eq!(second, direct);
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
        assert_eq!(service.cached_evaluations(), 1);
    }

    #[test]
    fn scalars_and_leading_dims_do_not_split_cache_entries() {
        let service = quick_service();
        let a = Call::gemm(Trans::NoTrans, Trans::NoTrans, 96, 96, 64, 1.0, 1.0);
        let b = Call::gemm(Trans::NoTrans, Trans::NoTrans, 96, 96, 64, -2.5, 0.0)
            .with_leading_dims(4000);
        let _ = service.predict_call(&a).unwrap();
        let _ = service.predict_call(&b).unwrap();
        assert_eq!(service.cache_stats().hits, 1);
        assert_eq!(service.cached_evaluations(), 1);
    }

    #[test]
    fn swap_invalidates_the_cache_but_not_snapshots() {
        let service = quick_service();
        let call = gemm(80);
        let expected = service.predict_call(&call).unwrap();
        let old_predictor = service.predictor();
        // An intentionally empty repository is a *valid* publication: it
        // clears the service.
        let old = service.swap(ModelRepository::new()).unwrap();
        assert!(!old.is_empty());
        assert_eq!(service.cached_evaluations(), 0);
        // The service now serves the empty repository...
        assert!(service.predict_call(&call).is_err());
        assert!(service.snapshot().is_empty());
        // ...but the predictor handed out before the swap still answers.
        assert_eq!(old_predictor.predict_call(&call).unwrap(), expected);
        // Swapping the old repository back restores service.
        service.swap((*old).clone()).unwrap();
        assert_eq!(service.predict_call(&call).unwrap(), expected);
    }

    #[test]
    fn merge_extends_the_served_repository() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(96);
        let (trinv_repo, _) =
            build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Trinv]);
        let (sylv_repo, _) =
            build_repository(&machine, Locality::InCache, 1, &cfg, &[Workload::Sylv]);
        let service = ModelService::new(trinv_repo, machine, Locality::InCache);
        let before = service.snapshot().len();
        service.merge(sylv_repo).unwrap();
        assert!(service.snapshot().len() > before);
        let sylv_call = Call::sylv_unb(64, 64);
        assert!(service.predict_call(&sylv_call).is_ok());
    }

    #[test]
    fn telemetry_counts_queries_per_region_and_ranks_them() {
        let service = quick_service();
        assert!(service.telemetry_enabled());
        // Nothing queried yet: the report is empty.
        assert!(service.refinement_report().is_empty());

        // 7 queries on one call, 2 on another; cache hits must keep counting.
        for _ in 0..7 {
            let _ = service.predict_call(&gemm(96)).unwrap();
        }
        for _ in 0..2 {
            let _ = service.predict_call(&gemm(32)).unwrap();
        }
        let report = service.refinement_report();
        assert_eq!(report.total_queries, 9);
        assert!(!report.is_empty());
        assert_eq!(report.machine_id, service.machine().id());
        assert_eq!(report.locality, Locality::InCache);
        let gemm_queries: u64 = report
            .cells
            .iter()
            .filter(|c| c.routine == Routine::Gemm)
            .map(|c| c.queries)
            .sum();
        assert_eq!(gemm_queries, 9);
        // Every reported cell names a real region of the served snapshot.
        let snapshot = service.snapshot();
        for cell in &report.cells {
            let model = snapshot
                .get(cell.routine, &report.machine_id, report.locality)
                .expect("reported routine is served");
            let submodel = model.submodel(&cell.flags).expect("reported flags exist");
            assert!(
                submodel.regions.iter().any(|r| r.region == cell.region),
                "reported region {} not found",
                cell.region
            );
            assert_eq!(cell.revision, 0, "initial build regions are revision 0");
        }
        // Ranking: hottest first.
        let priorities: Vec<f64> = report.cells.iter().map(|c| c.priority()).collect();
        assert!(priorities.windows(2).all(|w| w[0] >= w[1] || w[0].is_nan()));
    }

    #[test]
    fn telemetry_resets_on_swap_and_respects_the_enable_flag() {
        let service = quick_service();
        let _ = service.predict_call(&gemm(96)).unwrap();
        assert_eq!(service.refinement_report().total_queries, 1);

        // A swap starts a new generation: counters restart at zero.
        let current = (*service.snapshot()).clone();
        service.swap(current).unwrap();
        assert_eq!(service.refinement_report().total_queries, 0);
        let _ = service.predict_call(&gemm(96)).unwrap();
        assert_eq!(service.refinement_report().total_queries, 1);

        // Disabling telemetry stops counting on both hit and miss paths...
        service.set_telemetry_enabled(false);
        assert!(!service.telemetry_enabled());
        let _ = service.predict_call(&gemm(96)).unwrap(); // hit
        let _ = service.predict_call(&gemm(48)).unwrap(); // miss
        assert_eq!(service.refinement_report().total_queries, 1);
        // ...and re-enabling picks up immediately, warm cache included.
        service.set_telemetry_enabled(true);
        let _ = service.predict_call(&gemm(48)).unwrap();
        assert_eq!(service.refinement_report().total_queries, 2);
    }

    /// A gemm model whose only coefficient is NaN — invalid by construction.
    fn nan_gemm_repo(machine_id: &str) -> ModelRepository {
        use dla_model::{PiecewiseModel, Polynomial, RegionModel, RoutineModel, VectorPolynomial};
        let space = Region::new(vec![8, 8, 8], vec![128, 128, 128]);
        let nan_poly = Polynomial::new(3, vec![vec![0, 0, 0]], vec![f64::NAN]).unwrap();
        let poly = VectorPolynomial::new(vec![nan_poly; 5]).unwrap();
        let region = RegionModel {
            region: space.clone(),
            poly,
            error: 0.0,
            samples_used: 1,
            revision: 0,
        };
        let piecewise = PiecewiseModel::new(space.clone(), vec![region], 1);
        let mut model = RoutineModel::new(Routine::Gemm, machine_id, Locality::InCache, space);
        model.insert_submodel(submodel_key(&gemm(8)), piecewise);
        let mut repo = ModelRepository::new();
        repo.insert(model);
        repo
    }

    #[test]
    fn health_ledger_accounts_every_publication() {
        let service = quick_service();
        let initial = service.health();
        assert_eq!(initial.publishes_accepted, 0);
        assert_eq!(initial.publishes_rejected, 0);

        // An accepted swap advances the last good generation.
        let current = (*service.snapshot()).clone();
        service.swap(current).unwrap();
        let after_swap = service.health();
        assert_eq!(after_swap.publishes_accepted, 1);
        assert!(after_swap.last_good_generation > initial.last_good_generation);

        // A poisoned merge is rejected: the ledger records it and the served
        // generation stays put.
        let machine_id = service.machine().id();
        let err = service.merge(nan_gemm_repo(&machine_id)).unwrap_err();
        assert!(matches!(err, ModelError::Validation(_)));
        let after_reject = service.health();
        assert_eq!(after_reject.publishes_rejected, 1);
        assert_eq!(
            after_reject.last_good_generation,
            after_swap.last_good_generation
        );
        // The poisoned models never became visible.
        assert!(service
            .snapshot()
            .get(Routine::Gemm, &machine_id, Locality::InCache)
            .map(|m| m
                .submodels
                .values()
                .flat_map(|s| s.regions.iter())
                .flat_map(|r| r.poly.polynomials())
                .all(|p| p.coefficients().iter().all(|c| c.is_finite())))
            .unwrap_or(true));

        // A poisoned compiled swap is rejected through the same gate.
        let compiled = Arc::new(nan_gemm_repo(&machine_id).compiled());
        assert!(service.swap_compiled(compiled).is_err());
        assert_eq!(service.health().publishes_rejected, 2);

        // Refinement outcomes fold into the same ledger.
        let outcome = RefineOutcome {
            cells_recovered: 2,
            fit_failures: 3,
            sample_retries: 7,
            samples_discarded: 11,
            ..Default::default()
        };
        service.record_refinement(&outcome);
        let after_round = service.health();
        assert_eq!(after_round.cells_recovered, 2);
        assert_eq!(after_round.fit_failures, 3);
        assert_eq!(after_round.sample_retries, 7);
        assert_eq!(after_round.samples_discarded, 11);
        assert_eq!(after_round.quarantined_regions, 0);
    }

    #[test]
    fn trace_prediction_uses_the_cache() {
        let service = quick_service();
        let trace: Vec<Call> = (0..50).map(|_| gemm(96)).collect();
        let prediction = service.predict_trace(&trace).unwrap();
        assert_eq!(prediction.predicted_calls, 50);
        let stats = service.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 49);
        let predictor = service.predictor();
        let direct = predictor.predict_trace(&trace).unwrap();
        assert_eq!(prediction, direct);
    }
}
