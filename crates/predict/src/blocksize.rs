//! Block-size optimisation from performance models (paper Section IV-A2).

use dla_algos::{trinv_trace, TrinvVariant};
use dla_blas::flops::trinv_useful_flops;
use dla_blas::Call;
use dla_model::Result;

use crate::predictor::{efficiency_from_ticks, EfficiencyPrediction, TraceEvaluator};

/// The outcome of a block-size sweep for one algorithm variant.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSizeSweep {
    /// The variant that was tuned.
    pub variant: TrinvVariant,
    /// The problem size the sweep was performed for.
    pub n: usize,
    /// `(block size, predicted efficiency)` for every candidate.
    pub candidates: Vec<(usize, EfficiencyPrediction)>,
    /// Total per-call model evaluations behind the sweep (all candidate
    /// traces combined, degenerate calls excluded).
    pub evaluated_calls: usize,
    /// Model queries per second achieved by the batched evaluation pass —
    /// the sweep's throughput figure (0 when nothing was evaluated).
    pub queries_per_sec: f64,
}

impl BlockSizeSweep {
    /// The block size with the highest predicted median efficiency.
    ///
    /// `NaN` predictions never win: they are skipped, and if every candidate
    /// predicts `NaN` there is no meaningful optimum, so `None` is returned.
    pub fn best_block_size(&self) -> Option<usize> {
        self.candidates
            .iter()
            .filter(|(_, e)| !e.median.is_nan())
            .max_by(|a, b| a.1.median.total_cmp(&b.1.median))
            .map(|(b, _)| *b)
    }

    /// The predicted efficiency at the best block size.
    pub fn best_efficiency(&self) -> Option<f64> {
        self.best_block_size().and_then(|b| {
            self.candidates
                .iter()
                .find(|(bs, _)| *bs == b)
                .map(|(_, e)| e.median)
        })
    }
}

/// Default candidate block sizes: multiples of 8 between 8 and 256, the range
/// the paper sweeps in Figures I.2 and IV.2.
pub fn default_block_size_candidates() -> Vec<usize> {
    (1..=32).map(|i| i * 8).collect()
}

/// Sweeps candidate block sizes for a triangular-inversion variant and
/// returns the predictions.
///
/// Generic over the evaluator: pass a [`Predictor`](crate::Predictor) for
/// one-shot evaluation or a [`ModelService`](crate::ModelService) for
/// memoized serving (a sweep re-evaluates many shared calls, so the cache
/// pays off here).
pub fn optimize_block_size_trinv<E: TraceEvaluator>(
    evaluator: &E,
    variant: TrinvVariant,
    n: usize,
    candidates: &[usize],
) -> Result<BlockSizeSweep> {
    let kept: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&b| b > 0 && b <= n)
        .collect();
    // One batched pass over all candidate traces (the compiled engine's bulk
    // entry point) instead of a predict call per candidate.
    let traces: Vec<Vec<Call>> = kept
        .iter()
        .map(|&b| trinv_trace(variant, n, b, n))
        .collect();
    let trace_refs: Vec<&[Call]> = traces.iter().map(|t| t.as_slice()).collect();
    let started = std::time::Instant::now();
    let predictions = evaluator.predict_traces(&trace_refs)?;
    let elapsed = started.elapsed().as_secs_f64();
    let evaluated_calls: usize = predictions.iter().map(|p| p.predicted_calls).sum();
    let queries_per_sec = if elapsed > 0.0 && evaluated_calls > 0 {
        evaluated_calls as f64 / elapsed
    } else {
        0.0
    };
    let useful_flops = trinv_useful_flops(n);
    let results = kept
        .into_iter()
        .zip(predictions)
        .map(|(b, p)| {
            (
                b,
                efficiency_from_ticks(evaluator.machine(), useful_flops, &p.ticks),
            )
        })
        .collect();
    Ok(BlockSizeSweep {
        variant,
        n,
        candidates: results,
        evaluated_calls,
        queries_per_sec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_repository, ModelSetConfig, Workload};
    use crate::predictor::Predictor;
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::Locality;

    #[test]
    fn all_nan_sweep_has_no_best_block_size() {
        let nan = EfficiencyPrediction {
            median: f64::NAN,
            mean: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
        };
        let mut sweep = BlockSizeSweep {
            variant: TrinvVariant::V1,
            n: 128,
            candidates: vec![(32, nan), (64, nan)],
            evaluated_calls: 0,
            queries_per_sec: 0.0,
        };
        assert_eq!(sweep.best_block_size(), None);
        assert_eq!(sweep.best_efficiency(), None);
        // A single finite candidate wins over any number of NaN ones.
        let finite = EfficiencyPrediction {
            median: 0.5,
            mean: 0.5,
            min: 0.4,
            max: 0.6,
        };
        sweep.candidates.push((96, finite));
        assert_eq!(sweep.best_block_size(), Some(96));
    }

    #[test]
    fn candidate_list_matches_paper_range() {
        let c = default_block_size_candidates();
        assert_eq!(c.first(), Some(&8));
        assert_eq!(c.last(), Some(&256));
        assert!(c.iter().all(|b| b % 8 == 0));
    }

    #[test]
    fn sweep_prefers_moderate_block_sizes() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(512);
        let (repo, _) = build_repository(&machine, Locality::InCache, 5, &cfg, &[Workload::Trinv]);
        let predictor = Predictor::new(&repo, machine, Locality::InCache);
        let sweep = optimize_block_size_trinv(
            &predictor,
            TrinvVariant::V3,
            448,
            &[8, 16, 32, 64, 96, 128, 192, 256],
        )
        .unwrap();
        let best = sweep.best_block_size().unwrap();
        assert!(
            (32..=192).contains(&best),
            "optimal block size {best} should be moderate"
        );
        // Tiny block sizes are clearly worse than the optimum.
        let eff_at = |b: usize| {
            sweep
                .candidates
                .iter()
                .find(|(bs, _)| *bs == b)
                .map(|(_, e)| e.median)
                .unwrap()
        };
        assert!(sweep.best_efficiency().unwrap() > 1.3 * eff_at(8));
        assert_eq!(sweep.variant, TrinvVariant::V3);
        assert_eq!(sweep.n, 448);
    }

    #[test]
    fn candidates_larger_than_n_are_skipped() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(128);
        let (repo, _) = build_repository(&machine, Locality::InCache, 6, &cfg, &[Workload::Trinv]);
        let predictor = Predictor::new(&repo, machine, Locality::InCache);
        let sweep =
            optimize_block_size_trinv(&predictor, TrinvVariant::V1, 96, &[32, 64, 512, 0]).unwrap();
        assert_eq!(sweep.candidates.len(), 2);
    }
}
