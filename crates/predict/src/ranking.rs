//! Ranking algorithms by predicted performance and validating the ranking
//! against measurements.

use std::cmp::Ordering;

use dla_blas::Call;
use dla_model::Result;

use crate::predictor::{efficiency_from_ticks, EfficiencyPrediction, TraceEvaluator};

/// Total order for ranking scores best (largest) first, with `NaN` sorted
/// last.
///
/// Predictions can turn out `NaN` (e.g. a degenerate model fit); a ranking
/// must tolerate that instead of panicking mid-sort, and a `NaN` score should
/// never be declared the winner.  Built on [`f64::total_cmp`].
pub fn by_score_desc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => b.total_cmp(&a),
        nan_order => nan_last(nan_order),
    }
}

/// Total order for ranking scores smallest first, with `NaN` still sorted
/// last (note: this is *not* `by_score_desc` with swapped arguments — that
/// would sort `NaN` first).
pub fn by_score_asc(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.total_cmp(&b),
        nan_order => nan_last(nan_order),
    }
}

/// The shared `NaN`-last tail of both comparators; only called when at least
/// one side is `NaN`.
fn nan_last((a_nan, b_nan): (bool, bool)) -> Ordering {
    match (a_nan, b_nan) {
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        _ => Ordering::Equal,
    }
}

/// A scored candidate (algorithm variant, block size, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked<T> {
    /// The candidate.
    pub item: T,
    /// Its score (lower is better when ranking by ticks, higher is better
    /// when ranking by efficiency).
    pub score: f64,
}

fn rank_by<T: Clone>(items: &[(T, f64)], cmp: fn(f64, f64) -> Ordering) -> Vec<Ranked<T>> {
    let mut ranked: Vec<Ranked<T>> = items
        .iter()
        .map(|(item, score)| Ranked {
            item: item.clone(),
            score: *score,
        })
        .collect();
    ranked.sort_by(|a, b| cmp(a.score, b.score));
    ranked
}

/// Ranks candidates by ascending score (use for predicted ticks); `NaN`
/// scores sort last.
pub fn rank_ascending<T: Clone>(items: &[(T, f64)]) -> Vec<Ranked<T>> {
    rank_by(items, by_score_asc)
}

/// Ranks candidates by descending score (use for predicted efficiency);
/// `NaN` scores sort last.
pub fn rank_descending<T: Clone>(items: &[(T, f64)]) -> Vec<Ranked<T>> {
    rank_by(items, by_score_desc)
}

/// Ranks labelled traces by predicted median efficiency, best first, in one
/// batched evaluation pass over the evaluator.
///
/// Each candidate is `(label, trace, useful_flops)`; the traces are predicted
/// through [`TraceEvaluator::predict_traces`] — the batch entry point of the
/// compiled evaluation engine — converted to efficiencies, and sorted with
/// [`by_score_desc`] (`NaN` predictions last).  This is the shared core of
/// the pipeline's variant rankings.
pub fn rank_traces_by_efficiency<T, E: TraceEvaluator>(
    evaluator: &E,
    candidates: Vec<(T, Vec<Call>, f64)>,
) -> Result<Vec<(T, EfficiencyPrediction)>> {
    let traces: Vec<&[Call]> = candidates.iter().map(|(_, t, _)| t.as_slice()).collect();
    let predictions = evaluator.predict_traces(&traces)?;
    let mut ranked: Vec<(T, EfficiencyPrediction)> = candidates
        .into_iter()
        .zip(predictions)
        .map(|((label, _, useful_flops), prediction)| {
            let efficiency =
                efficiency_from_ticks(evaluator.machine(), useful_flops, &prediction.ticks);
            (label, efficiency)
        })
        .collect();
    ranked.sort_by(|a, b| by_score_desc(a.1.median, b.1.median));
    Ok(ranked)
}

/// Kendall's τ rank-correlation coefficient between two scorings of the same
/// candidates (identified by index).  Returns a value in `[-1, 1]`; `1` means
/// the two scorings order every pair identically.
pub fn kendall_tau(scores_a: &[f64], scores_b: &[f64]) -> f64 {
    assert_eq!(
        scores_a.len(),
        scores_b.len(),
        "kendall_tau: length mismatch"
    );
    let n = scores_a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = scores_a[i] - scores_a[j];
            let db = scores_b[i] - scores_b[j];
            let product = da * db;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Returns `true` if the two scorings agree on which candidate is best.
///
/// `lower_is_better` selects whether the best candidate has the smallest or
/// the largest score.
pub fn top_choice_agrees(scores_a: &[f64], scores_b: &[f64], lower_is_better: bool) -> bool {
    assert_eq!(scores_a.len(), scores_b.len());
    if scores_a.is_empty() {
        return true;
    }
    let best = |s: &[f64]| -> usize {
        let mut idx = 0;
        for (i, &v) in s.iter().enumerate() {
            let better = if lower_is_better {
                v < s[idx]
            } else {
                v > s[idx]
            };
            if better {
                idx = i;
            }
        }
        idx
    };
    best(scores_a) == best(scores_b)
}

/// Fraction of candidate pairs ordered identically by the two scorings
/// (1.0 = perfect ranking agreement).
pub fn pairwise_agreement(scores_a: &[f64], scores_b: &[f64]) -> f64 {
    (kendall_tau(scores_a, scores_b) + 1.0) / 2.0
}

/// Checks that the two scorings split the candidates into the same
/// "fast" / "slow" groups when thresholding at the given relative gap:
/// a candidate belongs to the fast group if its score is within
/// `gap * best_score` of the best score.
///
/// Returns the indices of the fast group according to `scores` (higher is
/// better).
pub fn fast_group(scores: &[f64], gap: f64) -> Vec<usize> {
    if scores.is_empty() {
        return vec![];
    }
    let best = scores.iter().cloned().fold(f64::MIN, f64::max);
    scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s >= best * gap)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_orders_items() {
        let items = vec![("a", 3.0), ("b", 1.0), ("c", 2.0)];
        let asc = rank_ascending(&items);
        assert_eq!(asc[0].item, "b");
        assert_eq!(asc[2].item, "a");
        let desc = rank_descending(&items);
        assert_eq!(desc[0].item, "a");
        assert_eq!(desc[0].score, 3.0);
    }

    #[test]
    fn nan_scores_sort_last_without_panicking() {
        assert_eq!(by_score_desc(1.0, 2.0), Ordering::Greater);
        assert_eq!(by_score_desc(2.0, 1.0), Ordering::Less);
        assert_eq!(by_score_desc(f64::NAN, 1.0), Ordering::Greater);
        assert_eq!(by_score_desc(1.0, f64::NAN), Ordering::Less);
        assert_eq!(by_score_desc(f64::NAN, f64::NAN), Ordering::Equal);
        // -0.0 and +0.0 keep a stable total order.
        assert_eq!(by_score_desc(-0.0, 0.0), Ordering::Greater);
        // The ascending order also keeps NaN last (it is not the reverse).
        assert_eq!(by_score_asc(1.0, 2.0), Ordering::Less);
        assert_eq!(by_score_asc(f64::NAN, 1.0), Ordering::Greater);
        assert_eq!(by_score_asc(1.0, f64::NAN), Ordering::Less);

        let items = vec![("nan", f64::NAN), ("low", 0.1), ("high", 0.9)];
        let desc = rank_descending(&items);
        assert_eq!(desc[0].item, "high");
        assert_eq!(desc[1].item, "low");
        assert_eq!(desc[2].item, "nan");
        let asc = rank_ascending(&items);
        assert_eq!(asc[0].item, "low");
        assert_eq!(asc[1].item, "high");
        assert_eq!(asc[2].item, "nan");
    }

    #[test]
    fn kendall_tau_perfect_and_inverted() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(kendall_tau(&a, &b), 1.0);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &c), -1.0);
        assert_eq!(pairwise_agreement(&a, &b), 1.0);
        assert_eq!(pairwise_agreement(&a, &c), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 1.0);
    }

    #[test]
    fn kendall_tau_partial_agreement() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0];
        // one of three pairs is discordant: tau = (2 - 1) / 3
        assert!((kendall_tau(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_choice_agreement() {
        let predicted = [10.0, 5.0, 20.0];
        let measured = [11.0, 6.0, 18.0];
        assert!(top_choice_agrees(&predicted, &measured, true));
        assert!(top_choice_agrees(&predicted, &measured, false));
        let measured_flipped = [4.0, 6.0, 18.0];
        assert!(!top_choice_agrees(&predicted, &measured_flipped, true));
        assert!(top_choice_agrees(&[], &[], true));
    }

    #[test]
    fn fast_group_thresholding() {
        // Efficiencies: two fast (~0.2), two slow (~0.02).
        let scores = [0.21, 0.19, 0.02, 0.015];
        let fast = fast_group(&scores, 0.5);
        assert_eq!(fast, vec![0, 1]);
        assert!(fast_group(&[], 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn kendall_tau_length_mismatch_panics() {
        let _ = kendall_tau(&[1.0], &[1.0, 2.0]);
    }
}
