//! Machine-id routing for the fleet serving tier.
//!
//! A fleet holds one serving shard per machine preset; the [`Router`] is the
//! deterministic map from a query's machine id to its shard index.  It is
//! deliberately dumb — an immutable id → index table built once at fleet
//! construction — so that routing is trivially reproducible across runs and
//! across worker counts: the same query always lands on the same shard, and
//! no routing state ever mutates under traffic.  (Failover is *not* the
//! router's job: the fleet's degraded path picks proxy shards from the
//! calibrated cross-machine efficiency table, see
//! [`fleet`](crate::fleet).)

use std::collections::HashMap;

/// An immutable machine-id → shard-index table.
///
/// Shard indices follow registration order, so the `n`-th registered shard
/// is index `n`; duplicate ids keep the **first** registration (later ones
/// are reported by [`Router::new`] so a misconfigured fleet fails loudly at
/// build time instead of silently shadowing a shard).
#[derive(Debug, Clone)]
pub struct Router {
    ids: Vec<String>,
    index: HashMap<String, usize>,
}

impl Router {
    /// Builds a router over `ids` in registration order.
    ///
    /// Returns the router and the list of duplicate ids that were dropped
    /// (empty in a well-formed fleet).
    pub fn new(ids: Vec<String>) -> (Router, Vec<String>) {
        let mut index = HashMap::with_capacity(ids.len());
        let mut kept = Vec::with_capacity(ids.len());
        let mut duplicates = Vec::new();
        for id in ids {
            if index.contains_key(&id) {
                duplicates.push(id);
                continue;
            }
            index.insert(id.clone(), kept.len());
            kept.push(id);
        }
        (Router { ids: kept, index }, duplicates)
    }

    /// The shard index serving `machine_id`, if any.
    pub fn route(&self, machine_id: &str) -> Option<usize> {
        self.index.get(machine_id).copied()
    }

    /// The registered machine ids, in shard-index order.
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// The machine id of shard `index`, if in range.
    pub fn id_of(&self, index: usize) -> Option<&str> {
        self.ids.get(index).map(String::as_str)
    }

    /// Number of routable shards.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when no shard is registered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_registration_order() {
        let (router, duplicates) = Router::new(vec!["a".into(), "b".into(), "c".into()]);
        assert!(duplicates.is_empty());
        assert_eq!(router.len(), 3);
        assert!(!router.is_empty());
        assert_eq!(router.route("a"), Some(0));
        assert_eq!(router.route("b"), Some(1));
        assert_eq!(router.route("c"), Some(2));
        assert_eq!(router.route("d"), None);
        assert_eq!(router.id_of(1), Some("b"));
        assert_eq!(router.id_of(3), None);
        assert_eq!(router.ids(), ["a", "b", "c"]);
    }

    #[test]
    fn duplicates_keep_the_first_registration() {
        let (router, duplicates) = Router::new(vec!["a".into(), "b".into(), "a".into()]);
        assert_eq!(duplicates, ["a"]);
        assert_eq!(router.len(), 2);
        assert_eq!(router.route("a"), Some(0));
        assert_eq!(router.route("b"), Some(1));
    }

    #[test]
    fn empty_router_routes_nothing() {
        let (router, duplicates) = Router::new(Vec::new());
        assert!(duplicates.is_empty());
        assert!(router.is_empty());
        assert_eq!(router.route("a"), None);
    }
}
