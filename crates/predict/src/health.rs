//! Serving-health telemetry: the degraded-serving ledger of the
//! fault-tolerant publication path.
//!
//! Every publication attempt on a [`ModelService`](crate::ModelService) is
//! accounted here: accepted swaps/merges advance the *last good generation*,
//! rejected ones (repositories that failed
//! [`RepositoryValidator`](dla_model::RepositoryValidator)) bump a rejection
//! counter while the service keeps serving the previous generation.  The
//! refinement loop feeds its per-round [`RefineOutcome`] in as well, so one
//! [`ServiceHealth`] snapshot answers the operational questions of a degraded
//! deployment: *what generation am I actually serving, how many publishes were
//! turned away, how many regions are quarantined, and how hard is the sampler
//! fighting for its measurements?*
//!
//! The counters live on the `dla_sync` facade ([`dla_model::sync`]) like the
//! rest of the serving tier, so `--cfg interleave` model-checks them together
//! with the cache and telemetry state they describe.

use dla_model::sync::atomic::{AtomicU64, Ordering};
use dla_modeler::RefineOutcome;

/// A point-in-time snapshot of the service's fault-tolerance ledger (see
/// [`ModelService::health`](crate::ModelService::health)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceHealth {
    /// The repository generation of the most recent *accepted* publication
    /// (the generation being served, unless a publish was rejected since —
    /// in which case this is the generation the service fell back to).
    pub last_good_generation: u64,
    /// Publications (swap/merge/compiled swap) that passed validation.
    pub publishes_accepted: u64,
    /// Publications rejected by the pre-publication validator; each one kept
    /// the previous generation serving.
    pub publishes_rejected: u64,
    /// Regions currently quarantined by the online refiner's circuit
    /// breakers, as of the last recorded refinement round.
    pub quarantined_regions: u64,
    /// Quarantined cells that recovered via a successful half-open probe
    /// (cumulative across recorded rounds).
    pub cells_recovered: u64,
    /// Region rebuilds that failed sampling or validation (cumulative).
    pub fit_failures: u64,
    /// Measurement attempts retried after a transient fault (cumulative).
    pub sample_retries: u64,
    /// Samples discarded as non-finite or robust-aggregation outliers
    /// (cumulative).
    pub samples_discarded: u64,
    /// Per-query failures observed by the serving tier: shard calls that
    /// errored, returned a corrupt (non-finite) reply, or found the harness
    /// unavailable.  Recorded by the fleet's query path (see
    /// [`ModelService::record_query_error`](crate::ModelService::record_query_error));
    /// one of the inputs driving the fleet's per-shard circuit breakers.
    pub query_errors: u64,
    /// Per-query deadline overruns observed by the serving tier (see
    /// [`ModelService::record_query_timeout`](crate::ModelService::record_query_timeout)).
    pub query_timeouts: u64,
}

impl std::fmt::Display for ServiceHealth {
    /// One summary line of the whole ledger — the form tests and examples
    /// print instead of spelling the counters out field by field.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gen {} · publishes {}+/{}- · queries {} err / {} t/o · refine: {} quarantined, \
             {} recovered, {} fit failures, {} retries, {} discarded",
            self.last_good_generation,
            self.publishes_accepted,
            self.publishes_rejected,
            self.query_errors,
            self.query_timeouts,
            self.quarantined_regions,
            self.cells_recovered,
            self.fit_failures,
            self.sample_retries,
            self.samples_discarded,
        )
    }
}

/// The live counters behind [`ServiceHealth`].  All increments and loads are
/// relaxed: each field is an independent statistic — nothing is published
/// *through* them, and a snapshot racing an increment merely reads a
/// momentarily stale total.
pub(crate) struct HealthCounters {
    last_good_generation: AtomicU64,
    publishes_accepted: AtomicU64,
    publishes_rejected: AtomicU64,
    quarantined_regions: AtomicU64,
    cells_recovered: AtomicU64,
    fit_failures: AtomicU64,
    sample_retries: AtomicU64,
    samples_discarded: AtomicU64,
    query_errors: AtomicU64,
    query_timeouts: AtomicU64,
}

impl HealthCounters {
    /// Fresh counters; `generation` is the initial repository's generation
    /// (the constructor-supplied repository is the first "last good" one).
    pub(crate) fn new(generation: u64) -> HealthCounters {
        HealthCounters {
            last_good_generation: AtomicU64::new(generation),
            publishes_accepted: AtomicU64::new(0),
            publishes_rejected: AtomicU64::new(0),
            quarantined_regions: AtomicU64::new(0),
            cells_recovered: AtomicU64::new(0),
            fit_failures: AtomicU64::new(0),
            sample_retries: AtomicU64::new(0),
            samples_discarded: AtomicU64::new(0),
            query_errors: AtomicU64::new(0),
            query_timeouts: AtomicU64::new(0),
        }
    }

    /// Records a failed serving-tier query against this shard.
    pub(crate) fn record_query_error(&self) {
        // ordering: Relaxed — standalone statistic.
        self.query_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a serving-tier query that overran its deadline.
    pub(crate) fn record_query_timeout(&self) {
        // ordering: Relaxed — standalone statistic.
        self.query_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accepted publication of `generation`.
    pub(crate) fn record_accepted(&self, generation: u64) {
        // ordering: Relaxed — standalone statistic; the repository handoff
        // itself synchronises through `SharedRepository`, not through this
        // counter.
        self.publishes_accepted.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — generations are monotone, and `fetch_max` keeps
        // the ledger monotone too when two accepted publishes race (the later
        // generation wins regardless of which thread records first).
        self.last_good_generation
            .fetch_max(generation, Ordering::Relaxed);
    }

    /// Records a publication rejected by the validator.
    pub(crate) fn record_rejected(&self) {
        // ordering: Relaxed — standalone statistic.
        self.publishes_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one refinement round's outcome into the ledger.  Each counter
    /// is an independent statistic, accumulated from the (single-threaded)
    /// refinement loop and read by snapshots, so every access is relaxed.
    pub(crate) fn record_refinement(&self, outcome: &RefineOutcome) {
        // ordering: Relaxed — latest-round gauge, independent statistic.
        self.quarantined_regions
            .store(outcome.quarantined.len() as u64, Ordering::Relaxed);
        // ordering: Relaxed — independent statistic.
        self.cells_recovered
            .fetch_add(outcome.cells_recovered as u64, Ordering::Relaxed);
        // ordering: Relaxed — independent statistic.
        self.fit_failures
            .fetch_add(outcome.fit_failures as u64, Ordering::Relaxed);
        // ordering: Relaxed — independent statistic.
        self.sample_retries
            .fetch_add(outcome.sample_retries, Ordering::Relaxed);
        // ordering: Relaxed — independent statistic.
        self.samples_discarded
            .fetch_add(outcome.samples_discarded, Ordering::Relaxed);
    }

    /// A point-in-time snapshot.  A statistics snapshot tolerates momentarily
    /// stale individual fields by definition, so every load is relaxed.
    pub(crate) fn snapshot(&self) -> ServiceHealth {
        ServiceHealth {
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            last_good_generation: self.last_good_generation.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            publishes_accepted: self.publishes_accepted.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            publishes_rejected: self.publishes_rejected.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            quarantined_regions: self.quarantined_regions.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            cells_recovered: self.cells_recovered.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            fit_failures: self.fit_failures.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            sample_retries: self.sample_retries.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            samples_discarded: self.samples_discarded.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            query_errors: self.query_errors.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            query_timeouts: self.query_timeouts.load(Ordering::Relaxed),
        }
    }
}
