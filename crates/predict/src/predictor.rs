//! Trace prediction: evaluating and accumulating per-call model estimates.

use std::marker::PhantomData;
use std::sync::Arc;

use dla_blas::flops::is_empty_call;
use dla_blas::Call;
use dla_machine::{Locality, MachineConfig};
use dla_mat::stats::Summary;
use dla_model::{
    submodel_key_fixed, BatchPoints, CompiledRepository, FlagKey, ModelError, ModelRepository,
    Result, RoutineTable, MAX_DIM,
};

/// The predicted execution time of a whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePrediction {
    /// Accumulated tick statistics (per-call estimates summed; standard
    /// deviations combined in quadrature).
    pub ticks: Summary,
    /// Total floating-point operations of the trace.
    pub flops: f64,
    /// Number of calls whose models were evaluated.
    pub predicted_calls: usize,
    /// Number of degenerate calls (a zero dimension) skipped at zero cost.
    pub skipped_calls: usize,
}

/// A prediction converted to the paper's `efficiency` metric.
///
/// Note the inversion: the *maximum* efficiency corresponds to the *minimum*
/// predicted ticks and vice versa.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPrediction {
    /// Efficiency computed from the median predicted ticks.
    pub median: f64,
    /// Efficiency computed from the mean predicted ticks.
    pub mean: f64,
    /// Lower bound: efficiency at the maximum predicted ticks.
    pub min: f64,
    /// Upper bound: efficiency at the minimum predicted ticks.
    pub max: f64,
}

/// Anything that can predict the performance of a call trace: the plain
/// [`Predictor`] (uncached model evaluation over one repository snapshot) or
/// the memoizing [`ModelService`](crate::ModelService) serving layer.
///
/// Workload-level prediction helpers ([`predict_trinv`],
/// [`optimize_block_size_trinv`], ...) are generic over this trait, so the
/// same code path serves both one-shot scripts and cached concurrent serving.
///
/// [`predict_trinv`]: crate::workloads::predict_trinv
/// [`optimize_block_size_trinv`]: crate::blocksize::optimize_block_size_trinv
pub trait TraceEvaluator {
    /// The machine configuration predictions refer to.
    fn machine(&self) -> &MachineConfig;

    /// Predicts the performance of a single call.
    fn predict_call(&self, call: &Call) -> Result<Summary>;

    /// Predicts the performance of a whole trace by accumulating the per-call
    /// estimates (paper Section IV: "these estimates are then accumulated");
    /// degenerate calls (a zero dimension) are skipped at zero cost.
    fn predict_trace(&self, trace: &[Call]) -> Result<TracePrediction> {
        let mut ticks = Summary::zero();
        let mut flops = 0.0;
        let mut predicted = 0;
        let mut skipped = 0;
        for call in trace {
            if is_empty_call(call) {
                skipped += 1;
                continue;
            }
            let estimate = self.predict_call(call)?;
            ticks.accumulate(&estimate);
            flops += call.flops();
            predicted += 1;
        }
        Ok(TracePrediction {
            ticks,
            flops,
            predicted_calls: predicted,
            skipped_calls: skipped,
        })
    }

    /// Predicts a batch of traces — the bulk entry point used by rankings
    /// and block-size sweeps, which evaluate many related traces at once.
    fn predict_traces(&self, traces: &[&[Call]]) -> Result<Vec<TracePrediction>> {
        traces.iter().map(|t| self.predict_trace(t)).collect()
    }

    /// Predicts the efficiency of a trace for an operation whose useful flop
    /// count is `useful_flops`.
    fn predict_efficiency(
        &self,
        trace: &[Call],
        useful_flops: f64,
    ) -> Result<EfficiencyPrediction> {
        let prediction = self.predict_trace(trace)?;
        Ok(efficiency_from_ticks(
            self.machine(),
            useful_flops,
            &prediction.ticks,
        ))
    }
}

/// The error returned when a repository holds no model for a routine on a
/// machine/locality combination (shared by every evaluator).
pub(crate) fn missing_model_error(
    routine: dla_blas::Routine,
    machine_id: &str,
    locality: Locality,
) -> ModelError {
    ModelError::MissingSubmodel(format!(
        "no model for {routine} on {machine_id} ({locality})"
    ))
}

/// Evaluates stored models to predict whole-algorithm performance.
///
/// Evaluation runs on the compiled engine
/// ([`CompiledRepository`](dla_model::CompiledRepository)): the repository is
/// compiled once at predictor construction (or inherited, already compiled,
/// from a [`ModelService`](crate::ModelService) snapshot), and the
/// machine/locality combination is pre-resolved into a routing table, so the
/// per-call path performs no allocation and no hashing.
pub struct Predictor<'a> {
    compiled: Arc<CompiledRepository>,
    table: RoutineTable,
    machine: MachineConfig,
    locality: Locality,
    /// Keeps the historical borrowed-repository lifetime in the type, so the
    /// classic `Predictor::new(&repo, ...)` shape still reads naturally.
    _borrow: PhantomData<&'a ModelRepository>,
}

impl<'a> Predictor<'a> {
    /// Creates a predictor that reads models for `machine` under `locality`,
    /// compiling the repository for fast evaluation.
    pub fn new(
        repository: &'a ModelRepository,
        machine: MachineConfig,
        locality: Locality,
    ) -> Self {
        let compiled = Arc::new(repository.compiled());
        Predictor::with_compiled(compiled, machine, locality)
    }

    /// Creates a predictor that owns an `Arc` snapshot of the repository, so
    /// it carries no borrow and can be moved freely across threads.
    pub fn shared(
        repository: Arc<ModelRepository>,
        machine: MachineConfig,
        locality: Locality,
    ) -> Predictor<'static> {
        let compiled = Arc::new(CompiledRepository::compile_arc(repository));
        Predictor::with_compiled(compiled, machine, locality)
    }

    /// Creates a predictor over an already-compiled repository (no
    /// recompilation; this is how [`ModelService`](crate::ModelService)
    /// hands out snapshot predictors).
    pub fn from_compiled(
        compiled: Arc<CompiledRepository>,
        machine: MachineConfig,
        locality: Locality,
    ) -> Predictor<'static> {
        Predictor::with_compiled(compiled, machine, locality)
    }

    fn with_compiled<'b>(
        compiled: Arc<CompiledRepository>,
        machine: MachineConfig,
        locality: Locality,
    ) -> Predictor<'b> {
        let table = compiled.resolve(&machine.id(), locality);
        Predictor {
            compiled,
            table,
            machine,
            locality,
            _borrow: PhantomData,
        }
    }

    /// The repository being evaluated.
    pub fn repository(&self) -> &ModelRepository {
        self.compiled.source().as_ref()
    }

    /// The compiled form the predictor evaluates.
    pub fn compiled(&self) -> &Arc<CompiledRepository> {
        &self.compiled
    }

    /// The machine configuration predictions refer to.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The memory-locality scenario of the models being used.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// Predicts the performance of a single call (compiled, allocation-free
    /// fast path: routing-table lookup, fixed-size submodel key, indexed
    /// region location, fused polynomial evaluation).
    pub fn predict_call(&self, call: &Call) -> Result<Summary> {
        let model = self
            .table
            .slot(call.routine())
            .map(|slot| self.compiled.model_at(slot))
            .ok_or_else(|| {
                missing_model_error(call.routine(), &self.machine.id(), self.locality)
            })?;
        model.estimate(call)
    }

    /// Predicts the performance of a whole trace (see
    /// [`TraceEvaluator::predict_trace`]).
    pub fn predict_trace(&self, trace: &[Call]) -> Result<TracePrediction> {
        TraceEvaluator::predict_trace(self, trace)
    }

    /// Predicts a batch of traces (see [`TraceEvaluator::predict_traces`]).
    pub fn predict_traces(&self, traces: &[&[Call]]) -> Result<Vec<TracePrediction>> {
        TraceEvaluator::predict_traces(self, traces)
    }

    /// The batched trace path: groups every call of every trace by
    /// (routine, flag key, arity) into flat [`BatchPoints`] column stores,
    /// evaluates each group through the SoA block kernel, then accumulates
    /// per trace in original call order — bit-identical results to the
    /// pointwise path, at batch-evaluation throughput.
    fn predict_traces_batched(&self, traces: &[&[Call]]) -> Result<Vec<TracePrediction>> {
        enum Placement {
            Skip,
            At(usize, usize),
        }
        struct Group {
            slot: usize,
            key: FlagKey,
            dim: usize,
            points: BatchPoints,
            summaries: Vec<Summary>,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut placements: Vec<Vec<Placement>> = Vec::with_capacity(traces.len());
        for trace in traces {
            let mut places = Vec::with_capacity(trace.len());
            for call in *trace {
                if is_empty_call(call) {
                    places.push(Placement::Skip);
                    continue;
                }
                let slot = self.table.slot(call.routine()).ok_or_else(|| {
                    missing_model_error(call.routine(), &self.machine.id(), self.locality)
                })?;
                let model = self.compiled.model_at(slot);
                let key = submodel_key_fixed(call);
                if !model.has_submodel(key) {
                    // Reproduce the exact pointwise error (with the call's
                    // flag characters) by asking the scalar path.
                    return match model.estimate(call) {
                        Err(e) => Err(e),
                        Ok(_) => Err(ModelError::MissingSubmodel(format!(
                            "submodel for {} appeared mid-batch",
                            call.routine()
                        ))),
                    };
                }
                let (sizes, len) = call.sizes_fixed();
                let mut clamped = [0usize; MAX_DIM];
                model.clamp_sizes(&sizes[..len], &mut clamped);
                let group = match groups
                    .iter()
                    .position(|g| g.slot == slot && g.key == key && g.dim == len)
                {
                    Some(g) => g,
                    None => {
                        groups.push(Group {
                            slot,
                            key,
                            dim: len,
                            points: BatchPoints::new(len),
                            summaries: Vec::new(),
                        });
                        groups.len() - 1
                    }
                };
                // Consecutive duplicates collapse onto one batch slot: loop
                // algorithms re-issue identical calls every iteration (e.g.
                // the constant-size unblocked factor in a blocked sweep), and
                // the placement table already shares indices naturally.
                let last = groups[group].points.len();
                let dup = last > 0
                    && (0..len).all(|d| groups[group].points.column(d)[last - 1] == clamped[d]);
                let index = if dup {
                    last - 1
                } else {
                    groups[group].points.push(&clamped[..len]);
                    last
                };
                places.push(Placement::At(group, index));
            }
            placements.push(places);
        }
        for g in &mut groups {
            self.compiled.model_at(g.slot).estimate_batch_clamped(
                g.key,
                &g.points,
                &mut g.summaries,
                None,
            )?;
        }
        let mut out = Vec::with_capacity(traces.len());
        for (trace, places) in traces.iter().zip(&placements) {
            let mut ticks = Summary::zero();
            let mut flops = 0.0;
            let mut predicted = 0;
            let mut skipped = 0;
            for (call, place) in trace.iter().zip(places) {
                match place {
                    Placement::Skip => skipped += 1,
                    Placement::At(g, i) => {
                        ticks.accumulate(&groups[*g].summaries[*i]);
                        flops += call.flops();
                        predicted += 1;
                    }
                }
            }
            out.push(TracePrediction {
                ticks,
                flops,
                predicted_calls: predicted,
                skipped_calls: skipped,
            });
        }
        Ok(out)
    }

    /// Predicts the efficiency of a trace for an operation whose useful flop
    /// count is `useful_flops`.
    pub fn predict_efficiency(
        &self,
        trace: &[Call],
        useful_flops: f64,
    ) -> Result<EfficiencyPrediction> {
        TraceEvaluator::predict_efficiency(self, trace, useful_flops)
    }
}

impl TraceEvaluator for Predictor<'_> {
    fn machine(&self) -> &MachineConfig {
        Predictor::machine(self)
    }

    fn predict_call(&self, call: &Call) -> Result<Summary> {
        Predictor::predict_call(self, call)
    }

    fn predict_traces(&self, traces: &[&[Call]]) -> Result<Vec<TracePrediction>> {
        self.predict_traces_batched(traces)
    }
}

/// Converts a tick summary into an efficiency prediction.
pub fn efficiency_from_ticks(
    machine: &MachineConfig,
    useful_flops: f64,
    ticks: &Summary,
) -> EfficiencyPrediction {
    EfficiencyPrediction {
        median: machine.efficiency(useful_flops, ticks.median),
        mean: machine.efficiency(useful_flops, ticks.mean),
        min: machine.efficiency(useful_flops, ticks.max),
        max: machine.efficiency(useful_flops, ticks.min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Diag, Side, Trans, Uplo};
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;
    use dla_model::Region;
    use dla_modeler::{Modeler, RefinementConfig, Strategy};

    fn small_repo() -> (ModelRepository, MachineConfig) {
        let machine = harpertown_openblas();
        let mut modeler = Modeler::new(
            SimExecutor::noiseless(machine.clone()),
            Locality::InCache,
            1,
            Strategy::Refinement(RefinementConfig {
                error_bound: 0.15,
                min_region_size: 128,
                grid_per_dim: 3,
                degree: 2,
            }),
        );
        let mut repo = ModelRepository::new();
        modeler.populate_repository(
            &mut repo,
            &[
                (
                    vec![Call::trsm(
                        Side::Left,
                        Uplo::Lower,
                        Trans::NoTrans,
                        Diag::NonUnit,
                        8,
                        8,
                        1.0,
                    )],
                    Region::new(vec![8, 8], vec![512, 512]),
                ),
                (
                    vec![Call::trmm(
                        Side::Right,
                        Uplo::Lower,
                        Trans::NoTrans,
                        Diag::NonUnit,
                        8,
                        8,
                        1.0,
                    )],
                    Region::new(vec![8, 8], vec![512, 512]),
                ),
            ],
        );
        (repo, machine)
    }

    #[test]
    fn predict_single_call_matches_cost_model_within_model_error() {
        let (repo, machine) = small_repo();
        let predictor = Predictor::new(&repo, machine.clone(), Locality::InCache);
        let call = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            300,
            200,
            1.0,
        );
        let predicted = predictor.predict_call(&call).unwrap();
        let truth = dla_machine::cost::estimate_ticks(&machine, &call, Locality::InCache);
        let rel = (predicted.median - truth).abs() / truth;
        assert!(rel < 0.35, "relative error {rel}");
        assert_eq!(predictor.locality(), Locality::InCache);
    }

    #[test]
    fn predict_trace_accumulates() {
        let (repo, machine) = small_repo();
        let predictor = Predictor::new(&repo, machine, Locality::InCache);
        let a = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            256,
            256,
            1.0,
        );
        let b = Call::trmm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            256,
            256,
            1.0,
        );
        let single_a = predictor.predict_trace(std::slice::from_ref(&a)).unwrap();
        let single_b = predictor.predict_trace(std::slice::from_ref(&b)).unwrap();
        let both = predictor.predict_trace(&[a.clone(), b.clone()]).unwrap();
        assert!((both.ticks.median - single_a.ticks.median - single_b.ticks.median).abs() < 1e-6);
        assert_eq!(both.predicted_calls, 2);
        assert_eq!(both.flops, a.flops() + b.flops());
        // std devs combine in quadrature, so the total is below the plain sum
        assert!(both.ticks.std_dev <= single_a.ticks.std_dev + single_b.ticks.std_dev + 1e-9);
    }

    #[test]
    fn empty_calls_are_skipped() {
        let (repo, machine) = small_repo();
        let predictor = Predictor::new(&repo, machine, Locality::InCache);
        let empty = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            128,
            0,
            1.0,
        );
        let p = predictor.predict_trace(&[empty]).unwrap();
        assert_eq!(p.predicted_calls, 0);
        assert_eq!(p.skipped_calls, 1);
        assert_eq!(p.ticks.median, 0.0);
    }

    #[test]
    fn missing_model_is_an_error() {
        let (repo, machine) = small_repo();
        let predictor = Predictor::new(&repo, machine, Locality::InCache);
        let gemm = Call::gemm(Trans::NoTrans, Trans::NoTrans, 64, 64, 64, 1.0, 1.0);
        assert!(predictor.predict_trace(&[gemm]).is_err());
        // Wrong locality also misses.
        let (repo, machine) = small_repo();
        let predictor = Predictor::new(&repo, machine, Locality::OutOfCache);
        let call = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            64,
            64,
            1.0,
        );
        assert!(predictor.predict_call(&call).is_err());
    }

    #[test]
    fn shared_predictor_matches_borrowed_and_moves_across_threads() {
        let (repo, machine) = small_repo();
        let call = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            300,
            200,
            1.0,
        );
        let borrowed = Predictor::new(&repo, machine.clone(), Locality::InCache);
        let expected = borrowed.predict_call(&call).unwrap();
        let shared = Predictor::shared(Arc::new(repo.clone()), machine, Locality::InCache);
        assert_eq!(shared.predict_call(&call).unwrap(), expected);
        assert_eq!(shared.repository().len(), repo.len());
        let from_thread = std::thread::spawn(move || shared.predict_call(&call).unwrap())
            .join()
            .unwrap();
        assert_eq!(from_thread, expected);
    }

    #[test]
    fn efficiency_prediction_inverts_ticks() {
        let machine = harpertown_openblas();
        let ticks = Summary {
            min: 100.0,
            mean: 210.0,
            median: 200.0,
            max: 400.0,
            std_dev: 10.0,
            count: 5,
        };
        let eff = efficiency_from_ticks(&machine, 800.0, &ticks);
        assert!(eff.max > eff.median && eff.median > eff.min);
        assert!((eff.max - machine.efficiency(800.0, 100.0)).abs() < 1e-12);
        assert!((eff.min - machine.efficiency(800.0, 400.0)).abs() < 1e-12);
        assert!(eff.mean < eff.median);
    }
}
