//! The fleet serving tier: health-routed shards, deadlines/retries, and
//! degraded-mode prediction.
//!
//! A [`FleetService`] owns one [`ModelService`] **shard** per machine preset
//! (Harpertown, Sandy Bridge, their threaded variants, …) behind a
//! [`Router`] keyed by machine id.  Every query carries a **deadline
//! budget** in deterministic virtual cost units; against that budget the
//! fleet runs a layered defence:
//!
//! 1. **Admission control.**  A fleet-wide in-flight bound sheds the
//!    lowest-priority queries first as occupancy climbs
//!    ([`Priority`], [`ShedReason::FleetOverloaded`]); a per-shard in-flight
//!    bound keeps one slow shard from absorbing the whole fleet's capacity.
//! 2. **Bounded retry.**  Shard calls get up to
//!    [`RetryPolicy::max_retries`] retries with seeded exponential backoff
//!    plus deterministic jitter — the schedule is a pure function of
//!    `(fleet seed, query id, attempt)`, so it is reproducible across runs
//!    *and across worker counts*.
//! 3. **Circuit breaking.**  A per-shard [`CircuitBreaker`] driven by query
//!    failures and by the shard's [`ServiceHealth`] ledger (rejected
//!    publishes, quarantine pressure; see
//!    [`FleetService::apply_ledger_pressure`]) trips Healthy → Degraded →
//!    Down, with half-open probing after a cooldown: exactly one query wins
//!    the probe slot, everyone else is rejected without touching the shard.
//! 4. **Degraded serving.**  When the direct path fails or is not admitted,
//!    the query is answered from the shard's retained **last-good compiled
//!    snapshot** if one exists ([`Served::Stale`]); otherwise it is
//!    **proxied** through the nearest healthy machine's model, scaled by a
//!    calibrated cross-machine efficiency ratio ([`Served::Proxied`]) — the
//!    paper's cross-platform transfer result (fig. IV.3/IV.4) turned into a
//!    failover path.  Only when every layer is exhausted is the query shed
//!    ([`Served::Shed`]), and even that is a tagged answer, not an error.
//!
//! Every retry, timeout, error, trip, recovery, probe and shed is accounted
//! in the [`FleetHealth`] roll-up, which also drives the **refinement budget
//! arbitration** ([`FleetService::arbitrate_refinement_budget`]): the shared
//! sampling budget is apportioned toward the shard whose drift × traffic
//! pressure is worst, closing the loop back into each shard's
//! [`OnlineRefiner`](dla_modeler::OnlineRefiner) via
//! [`set_sample_budget`](dla_modeler::OnlineRefiner::set_sample_budget).
//!
//! Fault injection mirrors the measurement layer's
//! [`ChaosExecutor`](dla_machine::ChaosExecutor): a [`ChaosShard`] wraps any
//! [`ShardClient`] and injects timeouts, hard outages and slow phases from
//! the same [`ChaosConfig`] schedule vocabulary, with **stateless** draws
//! keyed by `(seed, query id, attempt)` so concurrency never changes which
//! query sees which fault.
//!
//! Concurrency primitives come from the [`dla_model::sync`] facade: under
//! `--cfg interleave` the breaker word, the in-flight gauges and the
//! last-good slot run on the vendored model checker's shims
//! (see `tests/interleave_fleet.rs`).

use std::collections::HashMap;

use dla_blas::{Call, Routine};
use dla_machine::{derive_stream_seed, ChaosConfig, FaultCounts};
use dla_mat::stats::Summary;
use dla_model::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use dla_model::sync::Arc;
use dla_model::LastGoodSnapshot;

use crate::health::ServiceHealth;
use crate::predictor::Predictor;
use crate::router::Router;
use crate::service::ModelService;

// ---------------------------------------------------------------------------
// Queries and responses
// ---------------------------------------------------------------------------

/// Load-shedding priority of a fleet query.  Under fleet-wide pressure the
/// lowest priorities are shed first (see [`FleetConfig::fleet_in_flight_limit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Sheddable background traffic (sweeps, speculative rankings).
    Low,
    /// Ordinary interactive traffic.
    #[default]
    Normal,
    /// Traffic that must only be shed when the fleet is completely full.
    High,
}

/// One prediction query against the fleet.
#[derive(Debug, Clone)]
pub struct FleetQuery {
    /// Caller-assigned query id.  The id seeds the query's backoff and
    /// chaos streams, so reissuing the same id reproduces the exact same
    /// schedule regardless of how many workers drive the fleet.
    pub id: u64,
    /// The machine whose model should answer (routes to a shard).
    pub machine_id: String,
    /// The routine call to predict.
    pub call: Call,
    /// Total budget for this query, in virtual cost units.  Attempts,
    /// backoff pauses and degraded-mode evaluation all spend from it.
    pub deadline: u64,
    /// Load-shedding priority.
    pub priority: Priority,
}

/// How a fleet answer was produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Served {
    /// The shard's live model answered within budget.
    Fresh {
        /// Repository generation that answered.
        generation: u64,
    },
    /// The shard failed or was not admitted; the answer came from its
    /// retained last-good compiled snapshot.
    Stale {
        /// Generation of the retained snapshot.
        generation: u64,
    },
    /// The shard had no usable snapshot; the answer came from another
    /// machine's model, scaled by the calibrated efficiency ratio.
    Proxied {
        /// Machine id of the shard that actually answered.
        via: String,
        /// Applied scale factor (target ticks ÷ proxy ticks).
        ratio: f64,
    },
    /// Every serving layer was exhausted; no prediction was produced.
    Shed {
        /// Why the query was shed.
        reason: ShedReason,
    },
}

impl Served {
    /// Returns `true` when a prediction was produced (anything but shed).
    pub fn is_answer(&self) -> bool {
        !matches!(self, Served::Shed { .. })
    }
}

/// Why a query was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Fleet-wide admission control dropped the query before any shard was
    /// tried (occupancy at or above the priority's cutoff).
    FleetOverloaded,
    /// The deadline budget ran out before any layer could answer.
    DeadlineExhausted,
    /// Direct, stale and every proxy candidate failed within budget.
    NoFallback,
}

/// The fleet's answer to one [`FleetQuery`].
#[derive(Debug, Clone)]
pub struct FleetResponse {
    /// The prediction, absent only when [`Served::Shed`].
    pub summary: Option<Summary>,
    /// How the answer was produced.
    pub served: Served,
    /// Backoff-retries performed across direct and proxy attempts.
    pub retries: u64,
    /// Attempts that overran their per-attempt budget.
    pub timeouts: u64,
    /// Attempts that errored (unavailable shard, corrupt or failed reply).
    pub errors: u64,
    /// Virtual cost units spent answering (≤ the deadline).
    pub elapsed: u64,
}

/// Errors a fleet query can raise (everything else degrades to a tagged
/// [`FleetResponse`] instead of failing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// No shard serves the requested machine id.
    UnknownMachine(String),
    /// A fleet cannot be built with zero shards.
    EmptyFleet,
    /// Two shards were registered for the same machine id.
    DuplicateMachine(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownMachine(id) => write!(f, "no shard serves machine '{id}'"),
            FleetError::EmptyFleet => write!(f, "a fleet needs at least one shard"),
            FleetError::DuplicateMachine(id) => {
                write!(f, "machine '{id}' is registered twice")
            }
        }
    }
}

impl std::error::Error for FleetError {}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Bounded-retry policy with seeded exponential backoff and deterministic
/// jitter.
///
/// The pause before retry `attempt` is
/// `min(backoff_base · 2^attempt, backoff_cap) + jitter_draw` where
/// `jitter_draw ∈ [0, jitter]` is a pure function of the query's backoff
/// stream seed and the attempt index — no shared RNG state, so schedules
/// are identical no matter how many workers run queries concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = single attempt).
    pub max_retries: u32,
    /// Base backoff pause, in virtual cost units.
    pub backoff_base: u64,
    /// Upper bound on the exponential part of the pause.
    pub backoff_cap: u64,
    /// Maximum additive jitter (inclusive); 0 disables jitter.
    pub jitter: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            backoff_base: 4,
            backoff_cap: 32,
            jitter: 3,
        }
    }
}

impl RetryPolicy {
    /// The pause before retrying after failed attempt `attempt` (0-based),
    /// for the query whose backoff stream is seeded by `stream_seed`.
    pub fn backoff(&self, stream_seed: u64, attempt: u32) -> u64 {
        let exponential = self
            .backoff_base
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.backoff_cap);
        if self.jitter == 0 {
            return exponential;
        }
        // The splitmix64 finaliser behind `derive_stream_seed` scrambles the
        // attempt index into an independent draw; modulo bias over a span of
        // a few units is irrelevant for a pause length.
        let draw = derive_stream_seed(stream_seed, 0x6a09_e667_f3bc_c909 ^ u64::from(attempt));
        exponential + draw % (self.jitter + 1)
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Circuit-breaker thresholds and the ledger pressure rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failed queries that trip Healthy → Degraded.
    pub degraded_threshold: u32,
    /// Further consecutive failed queries that trip Degraded → Down.
    pub down_threshold: u32,
    /// Queries rejected while Down before one half-open probe is admitted.
    pub cooldown: u32,
    /// Quarantined-region count in the shard's [`ServiceHealth`] ledger at
    /// or above which [`FleetService::apply_ledger_pressure`] strikes the
    /// breaker; 0 disables the quarantine rule.
    pub ledger_quarantine_limit: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            degraded_threshold: 2,
            down_threshold: 4,
            cooldown: 8,
            ledger_quarantine_limit: 0,
        }
    }
}

/// Breaker states, in order of escalation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving normally.
    Healthy,
    /// Accumulating failures; still admitting queries.
    Degraded,
    /// Rejecting queries except for half-open probes.
    Down,
}

/// What the breaker decided about one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed normally.
    Allow,
    /// Proceed as the single half-open probe of a Down shard.
    Probe,
    /// Rejected; go straight to the degraded path.
    Reject,
}

/// Point-in-time breaker statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerStats {
    /// Current state.
    pub state: BreakerState,
    /// Healthy → Degraded transitions.
    pub trips_degraded: u64,
    /// Degraded → Down transitions.
    pub trips_down: u64,
    /// Transitions back to Healthy from a non-Healthy state.
    pub recoveries: u64,
    /// Half-open probes admitted while Down.
    pub probes: u64,
}

const STATE_HEALTHY: u64 = 0;
const STATE_DEGRADED: u64 = 1;
const STATE_DOWN: u64 = 2;
const STATE_MASK: u64 = 0b11;
const FAIL_SHIFT: u32 = 2;
const FAIL_MASK: u64 = (1 << 30) - 1;
const COOL_SHIFT: u32 = 32;

fn pack(state: u64, failures: u64, cooldown: u64) -> u64 {
    state | ((failures & FAIL_MASK) << FAIL_SHIFT) | (cooldown << COOL_SHIFT)
}

/// A lock-free per-shard circuit breaker: Healthy → Degraded → Down on
/// consecutive failed queries, half-open probing after a cooldown.
///
/// The whole state machine lives in one packed word (`state | failures |
/// cooldown`) advanced by compare-exchange, so concurrent recorders can
/// never tear a transition: for any interleaving, each trip and each
/// recovery is observed — and counted — exactly once, by the CAS winner
/// (model-checked in `tests/interleave_fleet.rs`).
#[derive(Debug)]
pub struct CircuitBreaker {
    word: AtomicU64,
    trips_degraded: AtomicU64,
    trips_down: AtomicU64,
    recoveries: AtomicU64,
    probes: AtomicU64,
}

impl Default for CircuitBreaker {
    fn default() -> CircuitBreaker {
        CircuitBreaker::new()
    }
}

impl CircuitBreaker {
    /// A healthy breaker with zeroed statistics.
    pub fn new() -> CircuitBreaker {
        CircuitBreaker {
            word: AtomicU64::new(pack(STATE_HEALTHY, 0, 0)),
            trips_degraded: AtomicU64::new(0),
            trips_down: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        // ordering: Acquire pairs with the AcqRel transitions so a caller
        // that observes Down also observes the failure history that caused
        // it (the state is used to gate side effects, not just statistics).
        match self.word.load(Ordering::Acquire) & STATE_MASK {
            STATE_HEALTHY => BreakerState::Healthy,
            STATE_DEGRADED => BreakerState::Degraded,
            _ => BreakerState::Down,
        }
    }

    /// Decides whether one query may touch the shard.  While Down, each
    /// rejection spends one unit of cooldown; the query that finds the
    /// cooldown exhausted claims the **single** half-open probe slot (the
    /// CAS re-arms the cooldown, so concurrent callers are rejected until
    /// the probe resolves).
    pub fn admit(&self, config: &BreakerConfig) -> Admission {
        loop {
            // ordering: Acquire — the admit/transition CAS protocol: every
            // RMW below publishes with AcqRel, so this load observes the
            // latest committed state word before attempting to advance it.
            let word = self.word.load(Ordering::Acquire);
            if word & STATE_MASK != STATE_DOWN {
                return Admission::Allow;
            }
            let failures = (word >> FAIL_SHIFT) & FAIL_MASK;
            let cooldown = word >> COOL_SHIFT;
            let next = if cooldown > 0 {
                pack(STATE_DOWN, failures, cooldown - 1)
            } else {
                pack(STATE_DOWN, failures, u64::from(config.cooldown))
            };
            // ordering: AcqRel on success — the CAS both consumes the
            // observed word (Acquire) and publishes the decremented
            // cooldown / claimed probe slot (Release) so exactly one caller
            // can win the probe; Acquire on failure to retry on fresh state.
            if self
                .word
                .compare_exchange(word, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if cooldown > 0 {
                    return Admission::Reject;
                }
                // ordering: Relaxed — standalone statistic; the probe claim
                // itself was published by the CAS above.
                self.probes.fetch_add(1, Ordering::Relaxed);
                return Admission::Probe;
            }
        }
    }

    /// Records one successfully answered query: any state collapses back to
    /// Healthy, counting a recovery if the state actually changed.
    pub fn record_success(&self) {
        let healthy = pack(STATE_HEALTHY, 0, 0);
        loop {
            // ordering: Acquire — see the CAS protocol note in `admit`.
            let word = self.word.load(Ordering::Acquire);
            if word == healthy {
                return;
            }
            // ordering: AcqRel on success — publishes the reset so a racing
            // failure recorder starts from Healthy, not from stale failure
            // counts; Acquire on failure to retry on fresh state.
            if self
                .word
                .compare_exchange(word, healthy, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if word & STATE_MASK != STATE_HEALTHY {
                    // ordering: Relaxed — standalone statistic, incremented
                    // only by the CAS winner so each recovery counts once.
                    self.recoveries.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
    }

    /// Records one failed query (one strike per query, not per attempt):
    /// Healthy escalates to Degraded after `degraded_threshold` consecutive
    /// strikes, Degraded to Down after `down_threshold` more; a strike while
    /// Down (a failed probe) re-arms the cooldown.
    pub fn record_failure(&self, config: &BreakerConfig) {
        loop {
            // ordering: Acquire — see the CAS protocol note in `admit`.
            let word = self.word.load(Ordering::Acquire);
            let state = word & STATE_MASK;
            let failures = (word >> FAIL_SHIFT) & FAIL_MASK;
            let (next, trip) = match state {
                STATE_HEALTHY => {
                    if failures + 1 >= u64::from(config.degraded_threshold.max(1)) {
                        (pack(STATE_DEGRADED, 0, 0), Some(BreakerState::Degraded))
                    } else {
                        (pack(STATE_HEALTHY, failures + 1, 0), None)
                    }
                }
                STATE_DEGRADED => {
                    if failures + 1 >= u64::from(config.down_threshold.max(1)) {
                        (
                            pack(STATE_DOWN, 0, u64::from(config.cooldown)),
                            Some(BreakerState::Down),
                        )
                    } else {
                        (pack(STATE_DEGRADED, failures + 1, 0), None)
                    }
                }
                _ => (pack(STATE_DOWN, failures, u64::from(config.cooldown)), None),
            };
            // ordering: AcqRel on success — publishes the transition so only
            // the CAS winner counts the trip below (exactly-once trip
            // accounting under races); Acquire on failure to retry.
            if self
                .word
                .compare_exchange(word, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                match trip {
                    Some(BreakerState::Degraded) => {
                        // ordering: Relaxed — standalone statistic, CAS
                        // winner only.
                        self.trips_degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(BreakerState::Down) => {
                        // ordering: Relaxed — standalone statistic, CAS
                        // winner only.
                        self.trips_down.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                return;
            }
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            state: self.state(),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            trips_degraded: self.trips_degraded.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            trips_down: self.trips_down.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            recoveries: self.recoveries.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            probes: self.probes.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Shard clients
// ---------------------------------------------------------------------------

/// One attempt's context, handed to a [`ShardClient`].
#[derive(Debug)]
pub struct ShardCall<'a> {
    /// The routine call to predict.
    pub call: &'a Call,
    /// The query's caller-assigned id (seeds per-query fault streams).
    pub query_id: u64,
    /// 0-based attempt index within this query.
    pub attempt: u32,
    /// Cost budget for this attempt; replies costing more are timeouts.
    pub budget: u64,
}

/// A successful shard answer.
#[derive(Debug, Clone)]
pub struct ShardReply {
    /// The prediction.
    pub summary: Summary,
    /// Virtual cost of producing it.
    pub cost: u64,
}

/// A failed shard attempt.  Every variant carries the cost the attempt
/// consumed before failing, so the deadline accounting stays exact.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// The shard could not be reached (retryable).
    Unavailable {
        /// Cost consumed before giving up.
        cost: u64,
    },
    /// The attempt overran its budget (retryable).
    Timeout {
        /// Cost consumed (≥ the attempt budget).
        cost: u64,
    },
    /// The shard answered with a definitive error — e.g. the call is outside
    /// the model space.  Not retryable: the same call will fail again.
    Failed {
        /// Why.
        reason: String,
        /// Cost consumed.
        cost: u64,
    },
}

impl ShardError {
    /// Cost the failed attempt consumed.
    pub fn cost(&self) -> u64 {
        match self {
            ShardError::Unavailable { cost }
            | ShardError::Timeout { cost }
            | ShardError::Failed { cost, .. } => *cost,
        }
    }

    /// Whether retrying the same call can help.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ShardError::Failed { .. })
    }
}

/// The call path to one shard.  Implementations must be deterministic in the
/// [`ShardCall`] context (same query id + attempt → same outcome) so fleet
/// behaviour is reproducible across worker counts.
pub trait ShardClient: Send + Sync {
    /// Runs one prediction attempt.
    fn predict(&self, call: &ShardCall<'_>) -> Result<ShardReply, ShardError>;
}

impl<C: ShardClient + ?Sized> ShardClient for Arc<C> {
    fn predict(&self, call: &ShardCall<'_>) -> Result<ShardReply, ShardError> {
        (**self).predict(call)
    }
}

/// The plain client: answers from the shard's live [`ModelService`] at a
/// fixed nominal cost.
#[derive(Debug)]
pub struct ServiceClient {
    service: Arc<ModelService>,
    cost: u64,
}

impl ServiceClient {
    /// Wraps `service`, charging `cost` units per answered attempt.
    pub fn new(service: Arc<ModelService>, cost: u64) -> ServiceClient {
        ServiceClient { service, cost }
    }
}

impl ShardClient for ServiceClient {
    fn predict(&self, call: &ShardCall<'_>) -> Result<ShardReply, ShardError> {
        match self.service.predict_call(call.call) {
            Ok(summary) => Ok(ShardReply {
                summary,
                cost: self.cost,
            }),
            Err(err) => Err(ShardError::Failed {
                reason: err.to_string(),
                cost: self.cost,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos shard
// ---------------------------------------------------------------------------

/// Fault-injecting wrapper over any [`ShardClient`] — the serving-tier
/// sibling of [`ChaosExecutor`](dla_machine::ChaosExecutor), sharing its
/// [`ChaosConfig`] vocabulary:
///
/// * `transient_probability` → [`ShardError::Unavailable`],
/// * `timeout_probability` → [`ShardError::Timeout`] consuming the whole
///   attempt budget,
/// * `spike_probability` → a slow phase: the reply's cost is multiplied by
///   `spike_factor` (often pushing it over budget),
/// * `non_finite_probability` → a **corrupt reply**: the summary is poisoned
///   to NaN and must be caught by the fleet's reply validation,
/// * `outage_probability` → a hard outage window: this and the next
///   `outage_draws − 1` attempts are unavailable.
///
/// Per-attempt draws are **stateless**: a pure hash of `(seed, query id,
/// attempt)` via [`derive_stream_seed`], so which query hits which fault is
/// independent of thread interleaving.  Only outage windows keep state (an
/// atomic countdown), which stays deterministic under single-threaded
/// drivers such as the degradation example.
pub struct ChaosShard<C> {
    inner: C,
    config: ChaosConfig,
    outage_left: AtomicU64,
    forced_down: AtomicBool,
    transient: AtomicU64,
    timeouts: AtomicU64,
    spikes: AtomicU64,
    non_finite: AtomicU64,
    outages: AtomicU64,
    outage_lost: AtomicU64,
}

impl<C> std::fmt::Debug for ChaosShard<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosShard")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<C: ShardClient> ChaosShard<C> {
    /// Wraps `inner` with the fault schedule `config`.
    pub fn new(inner: C, config: ChaosConfig) -> ChaosShard<C> {
        ChaosShard {
            inner,
            config,
            outage_left: AtomicU64::new(0),
            forced_down: AtomicBool::new(false),
            transient: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
            non_finite: AtomicU64::new(0),
            outages: AtomicU64::new(0),
            outage_lost: AtomicU64::new(0),
        }
    }

    /// Forces every attempt to fail as unavailable (a hard shard outage),
    /// until cleared — the switch the chaos suites use to take a shard down
    /// without touching probabilities.
    pub fn set_forced_down(&self, down: bool) {
        // ordering: Relaxed — an independent test/chaos switch; attempts
        // observing it a moment late merely see one more/fewer fault, which
        // is within the injected-fault contract.
        self.forced_down.store(down, Ordering::Relaxed);
    }

    /// Injected-fault totals so far, in the measurement layer's
    /// [`FaultCounts`] shape (`stuck` is unused by the serving faults).
    pub fn fault_counts(&self) -> FaultCounts {
        FaultCounts {
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            transient: self.transient.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            spikes: self.spikes.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            non_finite: self.non_finite.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            timeouts: self.timeouts.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            outages: self.outages.load(Ordering::Relaxed),
            // ordering: Relaxed — statistics snapshot, staleness tolerated.
            outage_lost: self.outage_lost.load(Ordering::Relaxed),
            stuck: 0,
        }
    }

    /// The unit draw for `(query, attempt)` — a pure function, shared by no
    /// one: chaining two splitmix64 finalisations keys an independent
    /// stream per query and an independent draw per attempt.
    fn unit(&self, query_id: u64, attempt: u32) -> f64 {
        let word = derive_stream_seed(
            derive_stream_seed(self.config.seed, query_id),
            u64::from(attempt),
        );
        (word >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Claims one draw of an open outage window, if any.
    fn consume_outage_draw(&self) -> bool {
        loop {
            // ordering: Relaxed — the countdown is an independent fault
            // gauge; the CAS below makes each decrement exclusive, and no
            // other data is published through it.
            let left = self.outage_left.load(Ordering::Relaxed);
            if left == 0 {
                return false;
            }
            // ordering: Relaxed on both — same reasoning: exclusivity comes
            // from the CAS itself, no cross-variable publication.
            if self
                .outage_left
                .compare_exchange(left, left - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }
}

impl<C: ShardClient> ShardClient for ChaosShard<C> {
    fn predict(&self, call: &ShardCall<'_>) -> Result<ShardReply, ShardError> {
        // ordering: Relaxed — see `set_forced_down`.
        if self.forced_down.load(Ordering::Relaxed) {
            // ordering: Relaxed — standalone statistic.
            self.transient.fetch_add(1, Ordering::Relaxed);
            return Err(ShardError::Unavailable { cost: 1 });
        }
        if self.consume_outage_draw() {
            // ordering: Relaxed — standalone statistic.
            self.outage_lost.fetch_add(1, Ordering::Relaxed);
            return Err(ShardError::Unavailable { cost: 1 });
        }
        let u = self.unit(call.query_id, call.attempt);
        let c = &self.config;
        let mut edge = c.transient_probability;
        if u < edge {
            // ordering: Relaxed — standalone statistic.
            self.transient.fetch_add(1, Ordering::Relaxed);
            return Err(ShardError::Unavailable { cost: 1 });
        }
        edge += c.timeout_probability;
        if u < edge {
            // ordering: Relaxed — standalone statistic.
            self.timeouts.fetch_add(1, Ordering::Relaxed);
            return Err(ShardError::Timeout { cost: call.budget });
        }
        edge += c.outage_probability;
        if u < edge {
            // ordering: Relaxed — standalone statistic.
            self.outages.fetch_add(1, Ordering::Relaxed);
            // ordering: Relaxed — standalone statistic (the opening draw is
            // itself lost, like the executor-side outage accounting).
            self.outage_lost.fetch_add(1, Ordering::Relaxed);
            if c.outage_draws > 1 {
                // ordering: Relaxed — see `consume_outage_draw`.
                self.outage_left
                    .store(c.outage_draws - 1, Ordering::Relaxed);
            }
            return Err(ShardError::Unavailable { cost: 1 });
        }
        edge += c.spike_probability;
        if u < edge {
            // ordering: Relaxed — standalone statistic.
            self.spikes.fetch_add(1, Ordering::Relaxed);
            let reply = self.inner.predict(call)?;
            let factor = if c.spike_factor.is_finite() && c.spike_factor > 1.0 {
                c.spike_factor
            } else {
                1.0
            };
            let slowed = (reply.cost as f64 * factor).ceil() as u64;
            return Ok(ShardReply {
                summary: reply.summary,
                cost: slowed.max(reply.cost),
            });
        }
        edge += c.non_finite_probability;
        if u < edge {
            // ordering: Relaxed — standalone statistic.
            self.non_finite.fetch_add(1, Ordering::Relaxed);
            let reply = self.inner.predict(call)?;
            return Ok(ShardReply {
                summary: reply.summary.scale(f64::NAN),
                cost: reply.cost,
            });
        }
        self.inner.predict(call)
    }
}

// ---------------------------------------------------------------------------
// Fleet configuration
// ---------------------------------------------------------------------------

/// Fleet-wide serving knobs.  All durations are deterministic virtual cost
/// units (the same currency as [`FleetQuery::deadline`]).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Root seed for per-query backoff streams.
    pub seed: u64,
    /// Nominal cost charged per [`ServiceClient`] answer.
    pub nominal_cost: u64,
    /// Per-attempt budget cap; attempts costing more count as timeouts.
    pub attempt_timeout: u64,
    /// Cost of a local degraded answer (stale evaluation or proxy scaling).
    /// The direct and proxy phases always leave this much headroom in the
    /// deadline so a degraded answer still fits.
    pub local_eval_cost: u64,
    /// Retry/backoff policy for shard attempts.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Per-shard in-flight bound; 0 = unlimited.  Attempts beyond the bound
    /// skip the shard (degraded path) instead of queueing.
    pub shard_in_flight_limit: u64,
    /// Fleet-wide in-flight bound; 0 = unlimited.  As occupancy climbs,
    /// [`Priority::Low`] queries are shed at `limit − limit/2`,
    /// [`Priority::Normal`] at `limit − limit/4`, [`Priority::High`] only
    /// at the full limit.
    pub fleet_in_flight_limit: u64,
    /// Calls used to calibrate cross-machine efficiency ratios at build
    /// time.  Empty ⇒ uncalibrated proxying (ratio 1.0 between all pairs).
    pub calibration_calls: Vec<Call>,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            seed: 0x5eed_f1ee_7000_0001,
            nominal_cost: 8,
            attempt_timeout: 64,
            local_eval_cost: 1,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            shard_in_flight_limit: 0,
            fleet_in_flight_limit: 0,
            calibration_calls: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Health roll-ups
// ---------------------------------------------------------------------------

/// Per-shard slice of the fleet health roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    /// Machine id this shard serves.
    pub machine_id: String,
    /// Current breaker state.
    pub state: BreakerState,
    /// Queries routed to this shard.
    pub queries: u64,
    /// Answered fresh.
    pub fresh: u64,
    /// Answered from the last-good snapshot.
    pub stale: u64,
    /// Answered by proxying through another shard.
    pub proxied: u64,
    /// Shed.
    pub shed: u64,
    /// Backoff-retries spent on this shard's queries (direct + proxy).
    pub retries: u64,
    /// Attempt timeouts observed on this shard's queries.
    pub timeouts: u64,
    /// Attempt errors observed on this shard's queries.
    pub errors: u64,
    /// Attempts skipped because the shard hit its in-flight bound.
    pub saturation_skips: u64,
    /// Healthy → Degraded trips.
    pub trips_degraded: u64,
    /// Degraded → Down trips.
    pub trips_down: u64,
    /// Recoveries back to Healthy.
    pub recoveries: u64,
    /// Half-open probes admitted.
    pub probes: u64,
    /// Queries currently inside the shard.
    pub in_flight: u64,
    /// Generation of the retained last-good snapshot, if any.
    pub last_good_generation: Option<u64>,
    /// The shard service's own fault-tolerance ledger.
    pub service: ServiceHealth,
}

/// The fleet-wide health roll-up: per-shard slices plus their exact sums.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealth {
    /// Total queries routed (Σ shards).
    pub queries: u64,
    /// Fresh answers (Σ shards).
    pub fresh: u64,
    /// Stale answers (Σ shards).
    pub stale: u64,
    /// Proxied answers (Σ shards).
    pub proxied: u64,
    /// Shed queries (Σ shards).
    pub shed: u64,
    /// Backoff-retries (Σ shards).
    pub retries: u64,
    /// Attempt timeouts (Σ shards).
    pub timeouts: u64,
    /// Attempt errors (Σ shards).
    pub errors: u64,
    /// Healthy → Degraded trips (Σ shards).
    pub trips_degraded: u64,
    /// Degraded → Down trips (Σ shards).
    pub trips_down: u64,
    /// Recoveries (Σ shards).
    pub recoveries: u64,
    /// Half-open probes (Σ shards).
    pub probes: u64,
    /// Queries currently in flight fleet-wide.
    pub in_flight: u64,
    /// Per-shard slices, in shard-index order.
    pub shards: Vec<ShardHealth>,
}

impl FleetHealth {
    /// Fraction of routed queries that got an answer (any tag but shed).
    pub fn availability(&self) -> f64 {
        if self.queries == 0 {
            return 1.0;
        }
        (self.queries - self.shed) as f64 / self.queries as f64
    }
}

impl std::fmt::Display for FleetHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "availability {:.4} · {} queries = {} fresh + {} stale + {} proxied + {} shed · \
             {} retries, {} timeouts, {} errors · trips {}D/{}d, {} recoveries, {} probes",
            self.availability(),
            self.queries,
            self.fresh,
            self.stale,
            self.proxied,
            self.shed,
            self.retries,
            self.timeouts,
            self.errors,
            self.trips_degraded,
            self.trips_down,
            self.recoveries,
            self.probes,
        )
    }
}

/// One shard's slice of an arbitrated refinement budget (see
/// [`FleetService::arbitrate_refinement_budget`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBudget {
    /// Machine id of the shard.
    pub machine_id: String,
    /// The shard's drift × traffic pressure (Σ hot-region priorities).
    pub pressure: f64,
    /// Samples apportioned to the shard this round — feed it to the shard's
    /// refiner via [`set_sample_budget`](dla_modeler::OnlineRefiner::set_sample_budget).
    pub sample_budget: usize,
}

// ---------------------------------------------------------------------------
// Fleet internals
// ---------------------------------------------------------------------------

/// Per-shard fleet-side counters.  Relaxed throughout: each field is an
/// independent statistic folded in exactly once per query.
struct ShardCounters {
    queries: AtomicU64,
    fresh: AtomicU64,
    stale: AtomicU64,
    proxied: AtomicU64,
    shed: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    saturation_skips: AtomicU64,
}

impl ShardCounters {
    fn new() -> ShardCounters {
        ShardCounters {
            queries: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            proxied: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            saturation_skips: AtomicU64::new(0),
        }
    }
}

struct Shard {
    machine_id: String,
    service: Arc<ModelService>,
    client: Arc<dyn ShardClient>,
    breaker: CircuitBreaker,
    last_good: LastGoodSnapshot,
    in_flight: AtomicU64,
    counters: ShardCounters,
    /// Watermark of `publishes_rejected` last seen by
    /// [`FleetService::apply_ledger_pressure`].
    rejected_seen: AtomicU64,
}

/// RAII occupancy guard over an in-flight gauge.
struct InFlightGuard<'a> {
    gauge: &'a AtomicU64,
}

impl<'a> InFlightGuard<'a> {
    fn enter(gauge: &'a AtomicU64) -> InFlightGuard<'a> {
        // ordering: Relaxed — the gauge is an admission heuristic, not a
        // synchronisation point: a racing reader seeing the count one step
        // stale admits/sheds one borderline query, which the admission
        // contract explicitly tolerates.
        gauge.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { gauge }
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        // ordering: Relaxed — see `enter`; the pair never protects data.
        self.gauge.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-query running totals, folded into the target shard's counters once
/// when the response is built.
#[derive(Default)]
struct QueryStats {
    retries: u64,
    timeouts: u64,
    errors: u64,
    elapsed: u64,
}

enum CallOutcome {
    /// A finite in-budget answer; carries the serving generation.
    Answered(Summary, u64),
    /// Attempts ran and all failed (the breaker was struck).
    Failed,
    /// The breaker rejected the query or the shard was saturated before any
    /// attempt ran (no strike: nothing new was learnt about the shard).
    NotAdmitted,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Builds a [`FleetService`] shard by shard.
pub struct FleetBuilder {
    config: FleetConfig,
    shards: Vec<(Arc<ModelService>, Arc<dyn ShardClient>)>,
}

impl FleetBuilder {
    /// Starts a fleet with `config`.
    pub fn new(config: FleetConfig) -> FleetBuilder {
        FleetBuilder {
            config,
            shards: Vec::new(),
        }
    }

    /// Registers a shard served directly by `service` (a [`ServiceClient`]
    /// at the configured nominal cost).
    pub fn shard(self, service: Arc<ModelService>) -> FleetBuilder {
        let client: Arc<dyn ShardClient> = Arc::new(ServiceClient::new(
            Arc::clone(&service),
            self.config.nominal_cost,
        ));
        self.shard_with_client(service, client)
    }

    /// Registers a shard whose call path goes through `client` (e.g. a
    /// [`ChaosShard`]); `service` remains the authority for health,
    /// snapshots and refinement reports.
    pub fn shard_with_client(
        mut self,
        service: Arc<ModelService>,
        client: Arc<dyn ShardClient>,
    ) -> FleetBuilder {
        self.shards.push((service, client));
        self
    }

    /// Builds the fleet: routes by machine id, calibrates cross-machine
    /// efficiency ratios over [`FleetConfig::calibration_calls`], and orders
    /// each shard's proxy fallbacks nearest-efficiency-first.
    pub fn build(self) -> Result<FleetService, FleetError> {
        if self.shards.is_empty() {
            return Err(FleetError::EmptyFleet);
        }
        let ids: Vec<String> = self
            .shards
            .iter()
            .map(|(service, _)| service.machine().id())
            .collect();
        let (router, duplicates) = Router::new(ids);
        if let Some(duplicate) = duplicates.into_iter().next() {
            return Err(FleetError::DuplicateMachine(duplicate));
        }

        let shards: Vec<Shard> = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(index, (service, client))| Shard {
                machine_id: router.ids()[index].clone(),
                service,
                client,
                breaker: CircuitBreaker::new(),
                last_good: LastGoodSnapshot::new(),
                in_flight: AtomicU64::new(0),
                counters: ShardCounters::new(),
                rejected_seen: AtomicU64::new(0),
            })
            .collect();

        let calibration = calibrate_ratios(&shards, &self.config.calibration_calls);
        let fallbacks = order_fallbacks(&calibration.global);

        Ok(FleetService {
            config: self.config,
            router,
            shards,
            calibration,
            fallbacks,
            in_flight: AtomicU64::new(0),
        })
    }
}

/// Cross-machine efficiency calibration: `global[a][b]` estimates
/// `ticks_a / ticks_b` as the geometric mean over **all** calibration calls
/// of both shards' (offline, chaos-free) predictions, and `curves[a][b]`
/// refines that per [`Routine`] as a [`SizeCurve`] over the call's size
/// space — the cross-machine performance relation varies with both routine
/// and problem size (paper fig. IV.3/IV.4 plot efficiency against size, per
/// routine; across this repo's presets the pairwise ratio spans more than
/// an order of magnitude over one serving mix), so proxy scaling
/// interpolates the routine's own calibrated surface at the query's sizes
/// and falls back to the global geometric mean for uncalibrated routines.
/// `NaN` marks an uncalibratable pair; with no calibration calls every pair
/// is 1.0 (uncalibrated proxying).
struct Calibration {
    global: Vec<Vec<f64>>,
    curves: Vec<Vec<HashMap<Routine, SizeCurve>>>,
}

impl Calibration {
    /// The scale for standing in for shard `a` with shard `b`'s answer to
    /// `call`: the routine's calibrated surface interpolated at the call's
    /// sizes, else the global geometric mean.
    // lint: allow(panic-free): a and b are router-validated shard indices; the
    // square tables cover every shard
    fn ratio(&self, a: usize, b: usize, call: &Call) -> f64 {
        let Some(curve) = self.curves[a][b].get(&call.routine()) else {
            return self.global[a][b];
        };
        let coords: Vec<f64> = call.sizes().iter().map(|&s| (s as f64).ln()).collect();
        curve.eval(&coords).exp()
    }
}

/// A calibrated log-ratio surface over one routine's log-size space.
///
/// When the calibration calls form a complete Cartesian grid over the
/// routine's size axes, evaluation is multilinear interpolation (clamped at
/// the grid's edges).  For scattered or incomplete calibrations it degrades
/// to the nearest calibrated point in log-size space (deterministic
/// tie-break: lexicographically first).
#[derive(Clone)]
struct SizeCurve {
    /// Per-dimension sorted unique log-size coordinates.
    axes: Vec<Vec<f64>>,
    /// Row-major log-ratio values over `axes`; empty when the points do not
    /// form a complete grid.
    grid: Vec<f64>,
    /// All calibrated `(log-sizes, log-ratio)` points, lexicographically
    /// sorted — the nearest-neighbour fallback.
    points: Vec<(Vec<f64>, f64)>,
}

impl SizeCurve {
    /// Builds the surface from scattered points; same-coordinate duplicates
    /// collapse to their mean so the surface is a function.
    fn build(mut points: Vec<(Vec<f64>, f64)>) -> SizeCurve {
        points.sort_by(|p, q| {
            p.0.iter()
                .zip(q.0.iter())
                .map(|(a, b)| a.total_cmp(b))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        points.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 = (kept.1 + next.1) / 2.0;
                true
            } else {
                false
            }
        });
        let dims = points.first().map_or(0, |(c, _)| c.len());
        let mut axes: Vec<Vec<f64>> = vec![Vec::new(); dims];
        for (coords, _) in &points {
            for (axis, &x) in axes.iter_mut().zip(coords.iter()) {
                let at = axis.partition_point(|&a| a < x);
                if axis.get(at) != Some(&x) {
                    axis.insert(at, x);
                }
            }
        }
        let cells: usize = axes.iter().map(Vec::len).product();
        let mut grid = vec![f64::NAN; cells.max(1)];
        if dims > 0 && points.len() == cells {
            for (coords, value) in &points {
                let index = axes.iter().zip(coords.iter()).fold(0, |acc, (axis, x)| {
                    acc * axis.len() + axis.partition_point(|&a| a < *x)
                });
                grid[index] = *value;
            }
        }
        if grid.iter().any(|v| v.is_nan()) {
            grid.clear();
        }
        SizeCurve { axes, grid, points }
    }

    /// Interpolates the log-ratio at log-size `coords`.
    // lint: allow(panic-free): grid and axes are built together — every
    // per-dimension index is clamped to axis.len() - 1 and the mixed-radix
    // corner index stays below the grid length
    fn eval(&self, coords: &[f64]) -> f64 {
        if self.grid.is_empty() || coords.len() != self.axes.len() {
            return self.eval_nearest(coords);
        }
        // Per dimension: the bracketing lower index and the weight of the
        // upper neighbour, clamped to the grid's edges.
        let dims = self.axes.len();
        let mut lower = vec![0usize; dims];
        let mut upper_weight = vec![0.0f64; dims];
        for (d, axis) in self.axes.iter().enumerate() {
            let x = coords[d];
            if axis.len() == 1 || x <= axis[0] {
                lower[d] = 0;
            } else if x >= axis[axis.len() - 1] {
                lower[d] = axis.len() - 2;
                upper_weight[d] = 1.0;
            } else {
                let hi = axis.partition_point(|&a| a < x);
                lower[d] = hi - 1;
                upper_weight[d] = (x - axis[hi - 1]) / (axis[hi] - axis[hi - 1]);
            }
        }
        let mut acc = 0.0;
        for corner in 0..(1usize << dims) {
            let mut weight = 1.0;
            let mut index = 0usize;
            for (d, axis) in self.axes.iter().enumerate() {
                let upper = (corner >> d) & 1 == 1;
                weight *= if upper {
                    upper_weight[d]
                } else {
                    1.0 - upper_weight[d]
                };
                let i = if upper {
                    (lower[d] + 1).min(axis.len() - 1)
                } else {
                    lower[d]
                };
                index = index * axis.len() + i;
            }
            if weight > 0.0 {
                acc += weight * self.grid[index];
            }
        }
        acc
    }

    fn eval_nearest(&self, coords: &[f64]) -> f64 {
        self.points
            .iter()
            .min_by(|p, q| {
                distance_squared(&p.0, coords).total_cmp(&distance_squared(&q.0, coords))
            })
            .map_or(0.0, |(_, value)| *value)
    }
}

fn distance_squared(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn calibrate_ratios(shards: &[Shard], calls: &[Call]) -> Calibration {
    let n = shards.len();
    if calls.is_empty() {
        return Calibration {
            global: vec![vec![1.0; n]; n],
            curves: vec![vec![HashMap::new(); n]; n],
        };
    }
    let predictors: Vec<Predictor<'static>> =
        shards.iter().map(|s| s.service.predictor()).collect();
    let ticks: Vec<Vec<Option<f64>>> = predictors
        .iter()
        .map(|p| {
            calls
                .iter()
                .map(|call| match p.predict_call(call) {
                    Ok(summary) if summary.median.is_finite() && summary.median > 0.0 => {
                        Some(summary.median)
                    }
                    _ => None,
                })
                .collect()
        })
        .collect();
    let mut global = vec![vec![f64::NAN; n]; n];
    let mut curves = vec![vec![HashMap::new(); n]; n];
    for a in 0..n {
        global[a][a] = 1.0;
        for b in 0..n {
            if a == b {
                continue;
            }
            let mut log_sum = 0.0;
            let mut count = 0usize;
            let mut by_routine: HashMap<Routine, Vec<(Vec<f64>, f64)>> = HashMap::new();
            for (k, call) in calls.iter().enumerate() {
                if let (Some(ta), Some(tb)) = (ticks[a][k], ticks[b][k]) {
                    let log_ratio = (ta / tb).ln();
                    log_sum += log_ratio;
                    count += 1;
                    let coords = call.sizes().iter().map(|&s| (s as f64).ln()).collect();
                    by_routine
                        .entry(call.routine())
                        .or_default()
                        .push((coords, log_ratio));
                }
            }
            if count > 0 {
                global[a][b] = (log_sum / count as f64).exp();
            }
            curves[a][b] = by_routine
                .into_iter()
                .map(|(routine, points)| (routine, SizeCurve::build(points)))
                .collect();
        }
    }
    Calibration { global, curves }
}

/// `fallbacks[a]`: the other shards, nearest efficiency first (smallest
/// `|ln ratio|`, ties by index); uncalibratable (`NaN`) pairs are excluded.
fn order_fallbacks(ratios: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = ratios.len();
    (0..n)
        .map(|a| {
            let mut candidates: Vec<(f64, usize)> = (0..n)
                .filter(|&b| b != a && ratios[a][b].is_finite() && ratios[a][b] > 0.0)
                .map(|b| (ratios[a][b].ln().abs(), b))
                .collect();
            candidates.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
            candidates.into_iter().map(|(_, b)| b).collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The fleet service
// ---------------------------------------------------------------------------

/// The fleet serving tier; see the [module docs](self) for the full
/// degradation ladder.
pub struct FleetService {
    config: FleetConfig,
    router: Router,
    shards: Vec<Shard>,
    calibration: Calibration,
    fallbacks: Vec<Vec<usize>>,
    in_flight: AtomicU64,
}

impl std::fmt::Debug for FleetService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetService")
            .field("machines", &self.router.ids())
            .finish_non_exhaustive()
    }
}

impl FleetService {
    /// The fleet's router (machine id → shard index).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shard service for `machine_id`, if registered.
    pub fn shard_service(&self, machine_id: &str) -> Option<&Arc<ModelService>> {
        self.router
            .route(machine_id)
            .map(|index| &self.shards[index].service)
    }

    /// The calibrated whole-mix efficiency ratio `ticks(target) /
    /// ticks(via)`, if both machines are registered and the pair calibrated.
    /// Proxied answers use the tighter per-routine refinement of this ratio
    /// when the query's routine was covered by the calibration calls.
    pub fn efficiency_ratio(&self, target: &str, via: &str) -> Option<f64> {
        let a = self.router.route(target)?;
        let b = self.router.route(via)?;
        let ratio = self.calibration.global[a][b];
        ratio.is_finite().then_some(ratio)
    }

    /// Answers one query; see the [module docs](self) for the degradation
    /// ladder.  Only an unroutable machine id is an error — everything else
    /// is a tagged [`FleetResponse`].
    // lint: panic-free
    pub fn query(&self, query: &FleetQuery) -> Result<FleetResponse, FleetError> {
        let Some(target) = self.router.route(&query.machine_id) else {
            return Err(FleetError::UnknownMachine(query.machine_id.clone()));
        };
        // lint: allow(panic-free): Router::route only returns in-range shard indices
        let shard = &self.shards[target];
        // ordering: Relaxed — standalone statistic.
        shard.counters.queries.fetch_add(1, Ordering::Relaxed);

        let mut stats = QueryStats::default();

        // Fleet-wide admission: shed the lowest priorities first.
        let fleet_limit = self.config.fleet_in_flight_limit;
        if fleet_limit > 0 {
            let cutoff = match query.priority {
                Priority::Low => fleet_limit - fleet_limit / 2,
                Priority::Normal => fleet_limit - fleet_limit / 4,
                Priority::High => fleet_limit,
            };
            // ordering: Relaxed — admission heuristic; see `InFlightGuard`.
            if self.in_flight.load(Ordering::Relaxed) >= cutoff {
                return Ok(self.finish(
                    shard,
                    None,
                    Served::Shed {
                        reason: ShedReason::FleetOverloaded,
                    },
                    stats,
                ));
            }
        }
        let _fleet_guard = InFlightGuard::enter(&self.in_flight);

        let backoff_seed = derive_stream_seed(self.config.seed, query.id);

        // 1. Direct path.
        match self.call_shard(target, query, backoff_seed, &mut stats) {
            CallOutcome::Answered(summary, generation) => {
                return Ok(self.finish(shard, Some(summary), Served::Fresh { generation }, stats));
            }
            CallOutcome::Failed | CallOutcome::NotAdmitted => {}
        }

        // 2. Stale path: the retained last-good snapshot, if any.
        if stats.elapsed + self.config.local_eval_cost <= query.deadline {
            if let Some((generation, snapshot)) = shard.last_good.get() {
                let predictor = Predictor::from_compiled(
                    snapshot,
                    shard.service.machine().clone(),
                    shard.service.locality(),
                );
                if let Ok(summary) = predictor.predict_call(&query.call) {
                    if summary.median.is_finite() && summary.mean.is_finite() {
                        stats.elapsed += self.config.local_eval_cost;
                        return Ok(self.finish(
                            shard,
                            Some(summary),
                            Served::Stale { generation },
                            stats,
                        ));
                    }
                }
            }
        }

        // 3. Proxy path: nearest healthy machine, efficiency-scaled.
        // lint: allow(panic-free): fallback lists are built with one entry per shard
        for &via in &self.fallbacks[target] {
            if stats.elapsed + self.config.local_eval_cost > query.deadline {
                break;
            }
            let via_seed = derive_stream_seed(backoff_seed, 0x9e37_79b9_7f4a_7c15 ^ via as u64);
            if let CallOutcome::Answered(summary, _) =
                self.call_shard(via, query, via_seed, &mut stats)
            {
                if stats.elapsed + self.config.local_eval_cost > query.deadline {
                    break;
                }
                stats.elapsed += self.config.local_eval_cost;
                let ratio = self.calibration.ratio(target, via, &query.call);
                return Ok(self.finish(
                    shard,
                    Some(summary.scale(ratio)),
                    Served::Proxied {
                        // lint: allow(panic-free): via comes from the per-shard fallback list
                        via: self.shards[via].machine_id.clone(),
                        ratio,
                    },
                    stats,
                ));
            }
        }

        // 4. Shed — still a tagged answer, accounted like everything else.
        let reason = if stats.elapsed + self.config.local_eval_cost > query.deadline {
            ShedReason::DeadlineExhausted
        } else {
            ShedReason::NoFallback
        };
        Ok(self.finish(shard, None, Served::Shed { reason }, stats))
    }

    /// Runs the bounded-retry attempt loop against shard `index`.  The loop
    /// always leaves [`FleetConfig::local_eval_cost`] units of deadline
    /// headroom so a degraded answer still fits afterwards.
    fn call_shard(
        &self,
        index: usize,
        query: &FleetQuery,
        backoff_seed: u64,
        stats: &mut QueryStats,
    ) -> CallOutcome {
        // lint: allow(panic-free): callers pass router-validated shard indices
        let shard = &self.shards[index];
        let admission = shard.breaker.admit(&self.config.breaker);
        if admission == Admission::Reject {
            return CallOutcome::NotAdmitted;
        }
        let shard_limit = self.config.shard_in_flight_limit;
        let mut attempt: u32 = 0;
        let mut attempted = false;
        loop {
            let headroom = query
                .deadline
                .saturating_sub(stats.elapsed)
                .saturating_sub(self.config.local_eval_cost);
            let budget = headroom.min(self.config.attempt_timeout);
            if budget == 0 {
                break;
            }
            // ordering: Relaxed — admission heuristic; see `InFlightGuard`.
            if shard_limit > 0 && shard.in_flight.load(Ordering::Relaxed) >= shard_limit {
                // ordering: Relaxed — standalone statistic.
                shard
                    .counters
                    .saturation_skips
                    .fetch_add(1, Ordering::Relaxed);
                break;
            }
            let outcome = {
                let _guard = InFlightGuard::enter(&shard.in_flight);
                shard.client.predict(&ShardCall {
                    call: &query.call,
                    query_id: query.id,
                    attempt,
                    budget,
                })
            };
            attempted = true;
            let mut retryable = true;
            match outcome {
                Ok(reply) => {
                    if reply.cost > budget {
                        // Took longer than the attempt budget: we stop
                        // waiting at the budget boundary.
                        stats.elapsed += budget;
                        stats.timeouts += 1;
                        shard.service.record_query_timeout();
                    } else if !(reply.summary.median.is_finite() && reply.summary.mean.is_finite())
                    {
                        // Corrupt reply: paid for, but unusable.
                        stats.elapsed += reply.cost;
                        stats.errors += 1;
                        shard.service.record_query_error();
                    } else {
                        stats.elapsed += reply.cost;
                        shard.breaker.record_success();
                        let snapshot = shard.service.compiled_snapshot();
                        let generation = shard.service.generation();
                        shard.last_good.retain(generation, snapshot);
                        return CallOutcome::Answered(reply.summary, generation);
                    }
                }
                Err(error) => {
                    stats.elapsed += error.cost().min(budget);
                    match &error {
                        ShardError::Timeout { .. } => {
                            stats.timeouts += 1;
                            shard.service.record_query_timeout();
                        }
                        ShardError::Unavailable { .. } | ShardError::Failed { .. } => {
                            stats.errors += 1;
                            shard.service.record_query_error();
                        }
                    }
                    retryable = error.is_retryable();
                }
            }
            if !retryable || attempt >= self.config.retry.max_retries {
                break;
            }
            let pause = self.config.retry.backoff(backoff_seed, attempt);
            let headroom = query
                .deadline
                .saturating_sub(stats.elapsed)
                .saturating_sub(self.config.local_eval_cost);
            if pause >= headroom {
                break;
            }
            stats.elapsed += pause;
            stats.retries += 1;
            attempt += 1;
        }
        if attempted {
            shard.breaker.record_failure(&self.config.breaker);
            CallOutcome::Failed
        } else {
            CallOutcome::NotAdmitted
        }
    }

    /// Folds the query's running totals into the target shard's counters
    /// (exactly once per query) and builds the response.
    fn finish(
        &self,
        shard: &Shard,
        summary: Option<Summary>,
        served: Served,
        stats: QueryStats,
    ) -> FleetResponse {
        let outcome = match &served {
            Served::Fresh { .. } => &shard.counters.fresh,
            Served::Stale { .. } => &shard.counters.stale,
            Served::Proxied { .. } => &shard.counters.proxied,
            Served::Shed { .. } => &shard.counters.shed,
        };
        // ordering: Relaxed — standalone statistic.
        outcome.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — standalone statistic.
        shard
            .counters
            .retries
            .fetch_add(stats.retries, Ordering::Relaxed);
        // ordering: Relaxed — standalone statistic.
        shard
            .counters
            .timeouts
            .fetch_add(stats.timeouts, Ordering::Relaxed);
        // ordering: Relaxed — standalone statistic.
        shard
            .counters
            .errors
            .fetch_add(stats.errors, Ordering::Relaxed);
        FleetResponse {
            summary,
            served,
            retries: stats.retries,
            timeouts: stats.timeouts,
            errors: stats.errors,
            elapsed: stats.elapsed,
        }
    }

    /// Feeds each shard's [`ServiceHealth`] ledger into its breaker: a
    /// publish rejected since the last application, or quarantine pressure
    /// at/above [`BreakerConfig::ledger_quarantine_limit`], each strike the
    /// breaker once.  Returns the post-application breaker states, in shard
    /// order.  Call this from the same maintenance loop that publishes
    /// refinement deltas.
    pub fn apply_ledger_pressure(&self) -> Vec<BreakerState> {
        self.shards
            .iter()
            .map(|shard| {
                let health = shard.service.health();
                // ordering: Relaxed — the watermark is an independent
                // maintenance cursor; the swap makes each rejection delta
                // observed by exactly one application.
                let seen = shard
                    .rejected_seen
                    .swap(health.publishes_rejected, Ordering::Relaxed);
                if health.publishes_rejected > seen {
                    shard.breaker.record_failure(&self.config.breaker);
                }
                let limit = self.config.breaker.ledger_quarantine_limit;
                if limit > 0 && health.quarantined_regions >= limit {
                    shard.breaker.record_failure(&self.config.breaker);
                }
                shard.breaker.state()
            })
            .collect()
    }

    /// Apportions a shared refinement sample budget across the shards,
    /// proportionally to each shard's drift × traffic pressure (the sum of
    /// its [`refinement_report`](ModelService::refinement_report) cell
    /// priorities, `queries × fit_error`; `NaN` priorities count as a large
    /// fixed pressure so unmeasurable drift is refined first).  Largest-
    /// remainder apportionment: the slices always sum exactly to `total`.
    /// With no pressure anywhere the budget is split evenly.
    pub fn arbitrate_refinement_budget(&self, total: usize) -> Vec<ShardBudget> {
        const NAN_PRESSURE: f64 = 1e12;
        let pressures: Vec<f64> = self
            .shards
            .iter()
            .map(|shard| {
                shard
                    .service
                    .refinement_report()
                    .cells
                    .iter()
                    .map(|cell| {
                        let p = cell.priority();
                        if p.is_finite() {
                            p
                        } else {
                            NAN_PRESSURE
                        }
                    })
                    .sum()
            })
            .collect();
        let weights: Vec<f64> = if pressures.iter().all(|&p| p <= 0.0) {
            vec![1.0; pressures.len()]
        } else {
            pressures.clone()
        };
        let sum: f64 = weights.iter().sum();
        let quotas: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
        let mut budgets: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = budgets.iter().sum();
        let mut order: Vec<usize> = (0..quotas.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = quotas[a] - quotas[a].floor();
            let fb = quotas[b] - quotas[b].floor();
            fb.total_cmp(&fa).then(a.cmp(&b))
        });
        for &index in order.iter().take(total.saturating_sub(assigned)) {
            budgets[index] += 1;
        }
        self.shards
            .iter()
            .zip(pressures)
            .zip(budgets)
            .map(|((shard, pressure), sample_budget)| ShardBudget {
                machine_id: shard.machine_id.clone(),
                pressure,
                sample_budget,
            })
            .collect()
    }

    /// The fleet-wide health roll-up; the fleet-level fields are exact sums
    /// of the per-shard slices.
    pub fn health(&self) -> FleetHealth {
        let shards: Vec<ShardHealth> = self
            .shards
            .iter()
            .map(|shard| {
                let breaker = shard.breaker.stats();
                ShardHealth {
                    machine_id: shard.machine_id.clone(),
                    state: breaker.state,
                    // ordering: Relaxed — statistics snapshot.
                    queries: shard.counters.queries.load(Ordering::Relaxed),
                    // ordering: Relaxed — statistics snapshot.
                    fresh: shard.counters.fresh.load(Ordering::Relaxed),
                    // ordering: Relaxed — statistics snapshot.
                    stale: shard.counters.stale.load(Ordering::Relaxed),
                    // ordering: Relaxed — statistics snapshot.
                    proxied: shard.counters.proxied.load(Ordering::Relaxed),
                    // ordering: Relaxed — statistics snapshot.
                    shed: shard.counters.shed.load(Ordering::Relaxed),
                    // ordering: Relaxed — statistics snapshot.
                    retries: shard.counters.retries.load(Ordering::Relaxed),
                    // ordering: Relaxed — statistics snapshot.
                    timeouts: shard.counters.timeouts.load(Ordering::Relaxed),
                    // ordering: Relaxed — statistics snapshot.
                    errors: shard.counters.errors.load(Ordering::Relaxed),
                    // ordering: Relaxed — statistics snapshot.
                    saturation_skips: shard.counters.saturation_skips.load(Ordering::Relaxed),
                    trips_degraded: breaker.trips_degraded,
                    trips_down: breaker.trips_down,
                    recoveries: breaker.recoveries,
                    probes: breaker.probes,
                    // ordering: Relaxed — statistics snapshot.
                    in_flight: shard.in_flight.load(Ordering::Relaxed),
                    last_good_generation: shard.last_good.generation(),
                    service: shard.service.health(),
                }
            })
            .collect();
        FleetHealth {
            queries: shards.iter().map(|s| s.queries).sum(),
            fresh: shards.iter().map(|s| s.fresh).sum(),
            stale: shards.iter().map(|s| s.stale).sum(),
            proxied: shards.iter().map(|s| s.proxied).sum(),
            shed: shards.iter().map(|s| s.shed).sum(),
            retries: shards.iter().map(|s| s.retries).sum(),
            timeouts: shards.iter().map(|s| s.timeouts).sum(),
            errors: shards.iter().map(|s| s.errors).sum(),
            trips_degraded: shards.iter().map(|s| s.trips_degraded).sum(),
            trips_down: shards.iter().map(|s| s.trips_down).sum(),
            recoveries: shards.iter().map(|s| s.recoveries).sum(),
            probes: shards.iter().map(|s| s.probes).sum(),
            // ordering: Relaxed — statistics snapshot.
            in_flight: self.in_flight.load(Ordering::Relaxed),
            shards,
        }
    }

    /// Per-machine-id view of [`health`](FleetService::health), for callers
    /// that don't want to track shard indices.
    pub fn shard_health(&self) -> HashMap<String, ShardHealth> {
        self.health()
            .shards
            .into_iter()
            .map(|shard| (shard.machine_id.clone(), shard))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker_config() -> BreakerConfig {
        BreakerConfig {
            degraded_threshold: 2,
            down_threshold: 3,
            cooldown: 2,
            ledger_quarantine_limit: 0,
        }
    }

    #[test]
    fn breaker_walks_the_escalation_ladder() {
        let config = breaker_config();
        let breaker = CircuitBreaker::new();
        assert_eq!(breaker.state(), BreakerState::Healthy);
        assert_eq!(breaker.admit(&config), Admission::Allow);

        breaker.record_failure(&config);
        assert_eq!(breaker.state(), BreakerState::Healthy);
        breaker.record_failure(&config);
        assert_eq!(breaker.state(), BreakerState::Degraded);
        assert_eq!(breaker.admit(&config), Admission::Allow);

        breaker.record_failure(&config);
        breaker.record_failure(&config);
        assert_eq!(breaker.state(), BreakerState::Degraded);
        breaker.record_failure(&config);
        assert_eq!(breaker.state(), BreakerState::Down);

        let stats = breaker.stats();
        assert_eq!(stats.trips_degraded, 1);
        assert_eq!(stats.trips_down, 1);
        assert_eq!(stats.recoveries, 0);

        // Cooldown: two rejects, then exactly one probe.
        assert_eq!(breaker.admit(&config), Admission::Reject);
        assert_eq!(breaker.admit(&config), Admission::Reject);
        assert_eq!(breaker.admit(&config), Admission::Probe);
        // The probe claim re-armed the cooldown.
        assert_eq!(breaker.admit(&config), Admission::Reject);

        // Probe failure keeps it Down; probe success recovers.
        breaker.record_failure(&config);
        assert_eq!(breaker.state(), BreakerState::Down);
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Healthy);
        assert_eq!(breaker.admit(&config), Admission::Allow);
        let stats = breaker.stats();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.probes, 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let config = breaker_config();
        let breaker = CircuitBreaker::new();
        breaker.record_failure(&config);
        breaker.record_success();
        breaker.record_failure(&config);
        assert_eq!(breaker.state(), BreakerState::Healthy);
        // A success while already Healthy does not count a recovery.
        assert_eq!(breaker.stats().recoveries, 0);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 8,
            backoff_base: 4,
            backoff_cap: 32,
            jitter: 3,
        };
        for attempt in 0..8 {
            let a = policy.backoff(42, attempt);
            let b = policy.backoff(42, attempt);
            assert_eq!(a, b, "backoff must be a pure function");
            let exponential = (4u64 << attempt).min(32);
            assert!(a >= exponential && a <= exponential + 3, "a = {a}");
        }
        // Jitter off: exact exponential-with-cap schedule.
        let plain = RetryPolicy {
            jitter: 0,
            ..policy
        };
        let pauses: Vec<u64> = (0..6).map(|i| plain.backoff(7, i)).collect();
        assert_eq!(pauses, [4, 8, 16, 32, 32, 32]);
    }

    #[test]
    fn fallback_ordering_prefers_the_nearest_efficiency() {
        // ratios[0]: machine 1 is 1.1× off, machine 2 is 4× off.
        let ratios = vec![
            vec![1.0, 1.1, 4.0],
            vec![0.9, 1.0, f64::NAN],
            vec![0.25, f64::NAN, 1.0],
        ];
        let fallbacks = order_fallbacks(&ratios);
        assert_eq!(fallbacks[0], [1, 2]);
        assert_eq!(fallbacks[1], [0], "NaN pairs are excluded");
        assert_eq!(fallbacks[2], [0]);
    }

    #[test]
    fn shard_error_cost_and_retryability() {
        assert_eq!(ShardError::Unavailable { cost: 3 }.cost(), 3);
        assert!(ShardError::Unavailable { cost: 3 }.is_retryable());
        assert!(ShardError::Timeout { cost: 9 }.is_retryable());
        let failed = ShardError::Failed {
            reason: "out of domain".into(),
            cost: 2,
        };
        assert_eq!(failed.cost(), 2);
        assert!(!failed.is_retryable());
    }

    #[test]
    fn priorities_order_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
