//! # dla-predict
//!
//! Prediction, ranking and block-size optimisation (paper Section IV).
//!
//! The pipeline is exactly the paper's: an algorithm's execution is described
//! by its **trace** — the sequence of BLAS/unblocked-kernel calls it performs
//! (produced by `dla-algos` without executing anything).  The [`Predictor`]
//! looks up the performance model of every call in a
//! [`ModelRepository`](dla_model::ModelRepository), evaluates it, and
//! accumulates the per-call estimates into a whole-algorithm prediction with
//! full statistical information (min / mean / median / max / standard
//! deviation).  Predictions are then used to
//!
//! * [`rank`](ranking::rank_by_median_ticks) equivalent algorithmic variants,
//! * [`optimize the block size`](blocksize::optimize_block_size), and
//! * validate against "measurements" (simulated executions) with ranking
//!   agreement metrics such as Kendall's τ.
//!
//! The [`workloads`] module wires the two workloads of the paper (triangular
//! inversion and the triangular Sylvester equation) to the Predictor, and
//! [`modelset`] builds the standard model repository those workloads need.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

//! For concurrent serving, [`ModelService`] wraps the repository behind an
//! atomically hot-swappable handle with a sharded evaluation cache, handing
//! out snapshot-owning [`Predictor`]s to any number of threads.
//!
//! All evaluators run on the compiled evaluation engine
//! ([`dla_model::CompiledRepository`]): repositories are compiled once (at
//! predictor construction or, for the service, at swap/merge time) into
//! indexed, fused, zero-allocation models, and rankings / block-size sweeps
//! go through the batched [`TraceEvaluator::predict_traces`] entry point.

pub mod blocksize;
pub mod fleet;
pub mod health;
pub mod modelset;
pub mod predictor;
pub mod ranking;
pub mod router;
pub mod service;
pub mod workloads;

pub use fleet::{
    Admission, BreakerConfig, BreakerState, ChaosShard, CircuitBreaker, FleetBuilder, FleetConfig,
    FleetError, FleetHealth, FleetQuery, FleetResponse, FleetService, Priority, RetryPolicy,
    Served, ServiceClient, ShardBudget, ShardCall, ShardClient, ShardError, ShardHealth,
    ShardReply, ShedReason,
};
pub use health::ServiceHealth;
pub use predictor::{EfficiencyPrediction, Predictor, TraceEvaluator, TracePrediction};
pub use router::Router;
pub use service::{CacheStats, ModelService};
