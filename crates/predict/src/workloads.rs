//! Wiring the paper's two workloads to the Predictor and to simulated
//! "measurements".
//!
//! A *prediction* evaluates stored models over an algorithm's trace.  A
//! *measurement* executes the same trace call by call on an executor (the
//! simulated machine with noise, or the native executor) and sums the
//! measured ticks — this is the reproduction's stand-in for actually running
//! the algorithm on hardware, and it is what the predictions are validated
//! against in every figure of Section IV.

use dla_algos::{sylv_trace, trinv_trace, SylvVariant, TrinvVariant};
use dla_blas::flops::{is_empty_call, trinv_useful_flops};
use dla_blas::Call;
use dla_machine::{Executor, Locality};
use dla_model::Result;

use crate::predictor::{EfficiencyPrediction, TraceEvaluator};
use crate::ranking::rank_traces_by_efficiency;

/// How operand locality is chosen when "measuring" a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurementMode {
    /// Every call runs with the given locality.
    Fixed(Locality),
    /// Calls whose operands fit in half of the last-level cache run in-cache,
    /// larger calls run out-of-cache.  Real executions sit between the two
    /// pure scenarios (paper Section IV-A1); this mode reproduces that.
    Auto,
}

/// The measured (simulated) execution of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceMeasurement {
    /// Total measured ticks.
    pub ticks: f64,
    /// Efficiency with respect to the workload's useful flop count.
    pub efficiency: f64,
    /// Number of calls executed.
    pub calls: usize,
}

/// Warms up the executor's "library" by running one tiny call of every
/// routine appearing in the trace, so that the measurement itself does not
/// include the first-invocation initialisation penalty (the paper explicitly
/// neglects these first measurements, Section II-B).
pub fn warm_up_library<E: Executor>(executor: &mut E, trace: &[Call]) {
    let mut seen = std::collections::HashSet::new();
    for call in trace {
        let routine = call.routine();
        if seen.insert(routine) {
            let sizes = vec![8; routine.size_count()];
            let tiny = call.with_sizes(&sizes);
            let _ = executor.execute(&tiny, Locality::InCache);
        }
    }
}

/// Executes every call of a trace once and accumulates the ticks.
///
/// The executor's library is warmed up first (see [`warm_up_library`]).
pub fn measure_trace<E: Executor>(
    executor: &mut E,
    trace: &[Call],
    useful_flops: f64,
    mode: MeasurementMode,
) -> TraceMeasurement {
    warm_up_library(executor, trace);
    let half_llc = executor
        .machine()
        .cpu
        .last_level_cache()
        .map(|c| c.size_bytes / 2)
        .unwrap_or(usize::MAX);
    let mut ticks = 0.0;
    let mut calls = 0;
    for call in trace {
        if is_empty_call(call) {
            continue;
        }
        let locality = match mode {
            MeasurementMode::Fixed(l) => l,
            MeasurementMode::Auto => {
                if call.operand_bytes() <= half_llc {
                    Locality::InCache
                } else {
                    Locality::OutOfCache
                }
            }
        };
        ticks += executor.execute(call, locality).ticks;
        calls += 1;
    }
    let efficiency = executor.machine().efficiency(useful_flops, ticks);
    TraceMeasurement {
        ticks,
        efficiency,
        calls,
    }
}

/// The useful flop count used for the Sylvester efficiency metric
/// (`m n (m + n)`, i.e. the operation's intrinsic cost).
pub fn sylv_useful_flops_total(m: usize, n: usize) -> f64 {
    let m = m as f64;
    let n = n as f64;
    m * n * (m + n)
}

/// Predicts the efficiency of one triangular-inversion variant.
///
/// Generic over the evaluator: pass a [`Predictor`](crate::Predictor) for
/// one-shot evaluation or a [`ModelService`](crate::ModelService) for
/// memoized serving.
pub fn predict_trinv<E: TraceEvaluator>(
    evaluator: &E,
    variant: TrinvVariant,
    n: usize,
    block_size: usize,
) -> Result<EfficiencyPrediction> {
    let trace = trinv_trace(variant, n, block_size, n);
    evaluator.predict_efficiency(&trace, trinv_useful_flops(n))
}

/// Predicts the efficiency of every triangular-inversion variant and returns
/// them ranked best first (by predicted median efficiency, `NaN` last), in
/// one batched evaluation pass.
pub fn rank_trinv_variants<E: TraceEvaluator>(
    evaluator: &E,
    n: usize,
    block_size: usize,
) -> Result<Vec<(TrinvVariant, EfficiencyPrediction)>> {
    let useful_flops = trinv_useful_flops(n);
    let candidates: Vec<(TrinvVariant, Vec<Call>, f64)> = TrinvVariant::ALL
        .iter()
        .map(|&v| (v, trinv_trace(v, n, block_size, n), useful_flops))
        .collect();
    rank_traces_by_efficiency(evaluator, candidates)
}

/// Predicts the efficiency of every Sylvester variant on an `n x n` problem
/// and returns them ranked best first, in one batched evaluation pass.
pub fn rank_sylv_variants<E: TraceEvaluator>(
    evaluator: &E,
    n: usize,
    block_size: usize,
) -> Result<Vec<(SylvVariant, EfficiencyPrediction)>> {
    let useful_flops = sylv_useful_flops_total(n, n);
    let candidates: Vec<(SylvVariant, Vec<Call>, f64)> = SylvVariant::all()
        .into_iter()
        .map(|v| (v, sylv_trace(v, n, n, block_size, n), useful_flops))
        .collect();
    rank_traces_by_efficiency(evaluator, candidates)
}

/// Measures (by simulated execution) the efficiency of one
/// triangular-inversion variant.
pub fn measure_trinv<E: Executor>(
    executor: &mut E,
    variant: TrinvVariant,
    n: usize,
    block_size: usize,
    mode: MeasurementMode,
) -> TraceMeasurement {
    let trace = trinv_trace(variant, n, block_size, n);
    measure_trace(executor, &trace, trinv_useful_flops(n), mode)
}

/// Predicts the efficiency of one Sylvester variant on an `n x n` problem.
pub fn predict_sylv<E: TraceEvaluator>(
    evaluator: &E,
    variant: SylvVariant,
    n: usize,
    block_size: usize,
) -> Result<EfficiencyPrediction> {
    let trace = sylv_trace(variant, n, n, block_size, n);
    evaluator.predict_efficiency(&trace, sylv_useful_flops_total(n, n))
}

/// Measures (by simulated execution) the efficiency of one Sylvester variant.
pub fn measure_sylv<E: Executor>(
    executor: &mut E,
    variant: SylvVariant,
    n: usize,
    block_size: usize,
    mode: MeasurementMode,
) -> TraceMeasurement {
    let trace = sylv_trace(variant, n, n, block_size, n);
    measure_trace(executor, &trace, sylv_useful_flops_total(n, n), mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_repository, ModelSetConfig, Workload};
    use crate::predictor::Predictor;
    use crate::ranking::{kendall_tau, top_choice_agrees};
    use dla_machine::presets::harpertown_openblas;
    use dla_machine::SimExecutor;

    #[test]
    fn measured_trinv_ranks_variant4_last() {
        let machine = harpertown_openblas();
        let mut executor = SimExecutor::new(machine, 7);
        let effs: Vec<f64> = TrinvVariant::ALL
            .iter()
            .map(|&v| measure_trinv(&mut executor, v, 512, 96, MeasurementMode::Auto).efficiency)
            .collect();
        // Variant 4 performs ~2.5x the work and must be clearly slowest.
        for i in 0..3 {
            assert!(
                effs[i] > 1.5 * effs[3],
                "variant {} ({}) should beat variant 4 ({})",
                i + 1,
                effs[i],
                effs[3]
            );
        }
        // Efficiencies are sane fractions of peak.
        assert!(effs.iter().all(|&e| e > 0.0 && e < 1.0));
    }

    #[test]
    fn predictions_rank_trinv_variants_like_measurements() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(512);
        let (repo, _) = build_repository(&machine, Locality::InCache, 3, &cfg, &[Workload::Trinv]);
        let predictor = Predictor::new(&repo, machine.clone(), Locality::InCache);
        let n = 448;
        let b = 96;
        let predicted: Vec<f64> = TrinvVariant::ALL
            .iter()
            .map(|&v| predict_trinv(&predictor, v, n, b).unwrap().median)
            .collect();
        let mut executor = SimExecutor::new(machine, 11);
        let measured: Vec<f64> = TrinvVariant::ALL
            .iter()
            .map(|&v| {
                measure_trinv(
                    &mut executor,
                    v,
                    n,
                    b,
                    MeasurementMode::Fixed(Locality::InCache),
                )
                .efficiency
            })
            .collect();
        assert!(
            kendall_tau(&predicted, &measured) >= 0.6,
            "predicted {predicted:?} vs measured {measured:?}"
        );
        assert!(top_choice_agrees(&predicted, &measured, false));
        // In-cache predictions bound the mixed-locality measurement from above
        // for the fastest variant (paper Fig. IV.1).
        let mut executor = SimExecutor::new(harpertown_openblas(), 13);
        let auto =
            measure_trinv(&mut executor, TrinvVariant::V3, n, b, MeasurementMode::Auto).efficiency;
        assert!(predicted[2] >= auto * 0.8);
    }

    #[test]
    fn sylvester_groups_are_separated_in_measurement() {
        let machine = harpertown_openblas();
        let mut executor = SimExecutor::new(machine, 21);
        let n = 768;
        let effs: Vec<(SylvVariant, f64)> = SylvVariant::all()
            .into_iter()
            .map(|v| {
                let e = measure_sylv(&mut executor, v, n, 96, MeasurementMode::Auto).efficiency;
                (v, e)
            })
            .collect();
        let fast: Vec<f64> = effs
            .iter()
            .filter(|(v, _)| v.is_gemm_rich())
            .map(|(_, e)| *e)
            .collect();
        let slow: Vec<f64> = effs
            .iter()
            .filter(|(v, _)| !v.is_gemm_rich())
            .map(|(_, e)| *e)
            .collect();
        let worst_fast = fast.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_slow = slow.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            worst_fast > 2.0 * best_slow,
            "fast group {fast:?} must clearly beat slow group {slow:?}"
        );
    }

    #[test]
    fn measurement_modes_differ() {
        let machine = harpertown_openblas();
        let mut executor = SimExecutor::new(machine, 5);
        let ic = measure_trinv(
            &mut executor,
            TrinvVariant::V1,
            256,
            64,
            MeasurementMode::Fixed(Locality::InCache),
        );
        let oc = measure_trinv(
            &mut executor,
            TrinvVariant::V1,
            256,
            64,
            MeasurementMode::Fixed(Locality::OutOfCache),
        );
        assert!(oc.ticks > ic.ticks);
        assert!(oc.efficiency < ic.efficiency);
        assert_eq!(ic.calls, oc.calls);
    }

    #[test]
    fn useful_flops_helpers() {
        assert_eq!(sylv_useful_flops_total(10, 20), 6000.0);
        assert!(trinv_useful_flops(100) > 0.0);
    }
}
