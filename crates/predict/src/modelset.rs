//! Building the standard model repository for the paper's workloads.
//!
//! Repository construction is split into two stages: a cheap, deterministic
//! **enumeration** stage that lists every template/parameter-space combination
//! to model ([`enumerate_build_tasks`]), and a **build** stage that fans the
//! per-task model builds across worker threads ([`build_tasks`]).  Each task
//! gets its own executor, forked from the base executor with the task index as
//! the stream id, so every task is hermetic: the resulting repository is byte
//! for byte identical for any worker count, including the serial `workers = 1`
//! build.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dla_blas::{Call, Diag, Side, Trans, Uplo};
use dla_machine::{Executor, Locality, MachineConfig, SimExecutor};
use dla_model::{ModelRepository, Region, RoutineModel};
use dla_modeler::{Modeler, ModelingReport, Strategy};

/// Which workload a repository must be able to predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Triangular inversion (`trinv`): needs `dtrmm`, `dtrsm`, `dgemm` and the
    /// unblocked triangular inversion.
    Trinv,
    /// Triangular Sylvester equation (`sylv`): needs `dgemm` and the unblocked
    /// Sylvester solver.
    Sylv,
}

/// Configuration of the repository-building step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSetConfig {
    /// Upper bound of the integer parameter space for the level-3 routines.
    pub max_size: usize,
    /// Upper bound for the unblocked kernels (the paper limits these models to
    /// sizes below 256 since they are only called on small blocks).
    pub unblocked_max: usize,
    /// Upper bound of the inner (`k`) dimension modelled for `dgemm`; in the
    /// blocked algorithms `k` never exceeds the block size, so a reduced range
    /// keeps the 3-D model cheap without losing accuracy where it matters.
    pub gemm_k_max: usize,
    /// Number of repetitions the Sampler takes per point.
    pub repetitions: usize,
    /// Model-generation strategy.
    pub strategy: Strategy,
    /// Number of worker threads the build stage fans out across; `0` selects
    /// [`std::thread::available_parallelism`].  Any worker count produces a
    /// byte-identical repository.
    pub workers: usize,
}

impl Default for ModelSetConfig {
    fn default() -> Self {
        ModelSetConfig {
            max_size: 1024,
            unblocked_max: 256,
            gemm_k_max: 256,
            repetitions: 5,
            strategy: Strategy::paper_default(),
            workers: 0,
        }
    }
}

impl ModelSetConfig {
    /// A cheaper configuration for tests and examples: smaller spaces, fewer
    /// repetitions, coarser regions.
    pub fn quick(max_size: usize) -> ModelSetConfig {
        ModelSetConfig {
            max_size,
            unblocked_max: max_size.min(256),
            gemm_k_max: max_size.min(128),
            repetitions: 2,
            strategy: Strategy::Refinement(dla_modeler::RefinementConfig {
                error_bound: 0.10,
                min_region_size: 64,
                grid_per_dim: 4,
                degree: 2,
            }),
            workers: 0,
        }
    }

    /// The same configuration with an explicit worker count.
    pub fn with_workers(mut self, workers: usize) -> ModelSetConfig {
        self.workers = workers;
        self
    }

    /// The effective worker count: `workers`, or the machine's available
    /// parallelism when `workers == 0`.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The call templates and parameter spaces a workload needs modelled.
pub fn workload_templates(workload: Workload, config: &ModelSetConfig) -> Vec<(Vec<Call>, Region)> {
    let max = config.max_size.max(16);
    let unb = config.unblocked_max.max(16);
    let kmax = config.gemm_k_max.max(16);
    let space2 = Region::new(vec![8, 8], vec![max, max]);
    let gemm_space = Region::new(vec![8, 8, 8], vec![max, max, kmax]);
    match workload {
        Workload::Trinv => vec![
            (
                vec![Call::trmm(
                    Side::Right,
                    Uplo::Lower,
                    Trans::NoTrans,
                    Diag::NonUnit,
                    8,
                    8,
                    1.0,
                )],
                space2.clone(),
            ),
            (
                vec![
                    Call::trsm(
                        Side::Left,
                        Uplo::Lower,
                        Trans::NoTrans,
                        Diag::NonUnit,
                        8,
                        8,
                        1.0,
                    ),
                    Call::trsm(
                        Side::Right,
                        Uplo::Lower,
                        Trans::NoTrans,
                        Diag::NonUnit,
                        8,
                        8,
                        1.0,
                    ),
                ],
                space2,
            ),
            (
                vec![Call::gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    8,
                    8,
                    8,
                    1.0,
                    1.0,
                )],
                gemm_space,
            ),
            (
                vec![Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 8)],
                Region::new(vec![8], vec![unb]),
            ),
        ],
        Workload::Sylv => vec![
            (
                vec![Call::gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    8,
                    8,
                    8,
                    1.0,
                    1.0,
                )],
                gemm_space,
            ),
            (
                vec![Call::sylv_unb(8, 8)],
                Region::new(vec![8, 8], vec![max, max]),
            ),
        ],
    }
}

/// One unit of model-construction work: a routine's call templates over a
/// parameter space, plus the noise-stream id its worker executor is forked
/// with (the task's position in enumeration order).
#[derive(Debug, Clone, PartialEq)]
pub struct BuildTask {
    /// The call templates (all invoking the same routine).
    pub templates: Vec<Call>,
    /// The integer parameter space to model.
    pub space: Region,
    /// Deterministic stream id for [`dla_machine::Executor::fork`].
    pub stream: u64,
}

/// Stage 1: enumerates the deduplicated build tasks for a set of workloads.
///
/// A routine/space combination shared by several workloads is listed once, so
/// each routine is modelled exactly once per distinct parameter space.
pub fn enumerate_build_tasks(workloads: &[Workload], config: &ModelSetConfig) -> Vec<BuildTask> {
    let mut tasks: Vec<BuildTask> = Vec::new();
    for &w in workloads {
        for (templates, space) in workload_templates(w, config) {
            let duplicate = tasks
                .iter()
                .any(|t| t.templates[0].routine() == templates[0].routine() && t.space == space);
            if duplicate {
                continue;
            }
            let stream = tasks.len() as u64;
            tasks.push(BuildTask {
                templates,
                space,
                stream,
            });
        }
    }
    tasks
}

fn build_one_task<E: Executor>(
    executor: &E,
    locality: Locality,
    config: &ModelSetConfig,
    task: &BuildTask,
) -> (RoutineModel, ModelingReport) {
    let mut modeler = Modeler::new(
        executor.fork(task.stream),
        locality,
        config.repetitions,
        config.strategy,
    );
    modeler.build_routine_model(&task.templates, &task.space)
}

/// Stage 2: builds every task's routine model, fanning out across
/// `config.workers` threads (`0` = available parallelism), and merges the
/// results in task order.
///
/// Each task runs on an executor forked from `executor` with the task's
/// stream id, so the output is independent of scheduling: serial and parallel
/// builds produce byte-identical repositories.
pub fn build_tasks<E: Executor + Sync>(
    executor: &E,
    locality: Locality,
    config: &ModelSetConfig,
    tasks: &[BuildTask],
) -> (ModelRepository, Vec<ModelingReport>) {
    let workers = config.effective_workers().min(tasks.len()).max(1);
    let mut built: Vec<Option<(RoutineModel, ModelingReport)>> = Vec::new();
    if workers <= 1 {
        for task in tasks {
            built.push(Some(build_one_task(executor, locality, config, task)));
        }
    } else {
        let slots: Vec<Mutex<Option<(RoutineModel, ModelingReport)>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // ordering: Relaxed — the counter only hands out distinct
                    // task indices; results are published through the slot
                    // mutexes (and the scope join), not through this atomic.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    let result = build_one_task(executor, locality, config, &tasks[i]);
                    // lint: allow(unwrap): a poisoned slot means a sibling build panicked; the scope re-panics anyway
                    *slots[i].lock().expect("build slot poisoned") = Some(result);
                });
            }
        });
        built = slots
            .into_iter()
            // lint: allow(unwrap): a poisoned slot means a sibling build panicked; the scope re-panics anyway
            .map(|slot| slot.into_inner().expect("build slot poisoned"))
            .collect();
    }
    let mut repo = ModelRepository::new();
    let mut reports = Vec::with_capacity(tasks.len());
    for entry in built {
        // lint: allow(unwrap): the task loop writes every slot before the scope joins
        let (model, report) = entry.expect("every task produces a model");
        repo.insert(model);
        reports.push(report);
    }
    (repo, reports)
}

/// Builds a model repository covering the given workloads on the given machine
/// and locality scenario, using the simulated executor.
///
/// This is the two-stage pipeline: [`enumerate_build_tasks`] followed by
/// [`build_tasks`] with a [`SimExecutor`] seeded with `seed`.  Returns the
/// repository together with the per-routine modeling reports (samples used,
/// regions, average error).
pub fn build_repository(
    machine: &MachineConfig,
    locality: Locality,
    seed: u64,
    config: &ModelSetConfig,
    workloads: &[Workload],
) -> (ModelRepository, Vec<ModelingReport>) {
    let executor = SimExecutor::new(machine.clone(), seed);
    let tasks = enumerate_build_tasks(workloads, config);
    build_tasks(&executor, locality, config, &tasks)
}

/// Builds a repository and wraps it in a ready-to-serve
/// [`ModelService`](crate::ModelService): per-routine model construction fans
/// out across worker threads, and the result is run through the compiled
/// evaluation engine exactly once, as the service takes ownership.
pub fn build_service(
    machine: &MachineConfig,
    locality: Locality,
    seed: u64,
    config: &ModelSetConfig,
    workloads: &[Workload],
) -> (crate::ModelService, Vec<ModelingReport>) {
    let (repository, reports) = build_repository(machine, locality, seed, config, workloads);
    let service = crate::ModelService::new(repository, machine.clone(), locality);
    (service, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::Routine;
    use dla_machine::presets::harpertown_openblas;

    #[test]
    fn trinv_templates_cover_needed_routines() {
        let cfg = ModelSetConfig::quick(128);
        let templates = workload_templates(Workload::Trinv, &cfg);
        let routines: Vec<Routine> = templates.iter().map(|(t, _)| t[0].routine()).collect();
        assert!(routines.contains(&Routine::Trmm));
        assert!(routines.contains(&Routine::Trsm));
        assert!(routines.contains(&Routine::Gemm));
        assert!(routines.contains(&Routine::TrtriUnb));
        // the trsm entry carries both side variants
        let trsm = templates
            .iter()
            .find(|(t, _)| t[0].routine() == Routine::Trsm)
            .unwrap();
        assert_eq!(trsm.0.len(), 2);
    }

    #[test]
    fn build_quick_repository_for_both_workloads() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(96);
        let (repo, reports) = build_repository(
            &machine,
            Locality::InCache,
            1,
            &cfg,
            &[Workload::Trinv, Workload::Sylv],
        );
        // 4 routines for trinv + sylv_unb (gemm shared... distinct space so rebuilt)
        assert!(repo.len() >= 5);
        assert!(!reports.is_empty());
        let id = machine.id();
        for routine in [
            Routine::Trmm,
            Routine::Trsm,
            Routine::Gemm,
            Routine::TrtriUnb,
            Routine::SylvUnb,
        ] {
            assert!(
                repo.get(routine, &id, Locality::InCache).is_some(),
                "missing model for {routine}"
            );
        }
        assert!(repo.total_samples() > 0);
    }

    #[test]
    fn gemm_space_is_shared_between_workloads() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(64);
        let (_, reports) = build_repository(
            &machine,
            Locality::InCache,
            1,
            &cfg,
            &[Workload::Trinv, Workload::Sylv],
        );
        let gemm_reports = reports
            .iter()
            .filter(|r| r.routine == Routine::Gemm)
            .count();
        assert_eq!(gemm_reports, 1, "gemm must only be modelled once");
    }

    #[test]
    fn default_config_is_paper_sized() {
        let cfg = ModelSetConfig::default();
        assert_eq!(cfg.max_size, 1024);
        assert_eq!(cfg.unblocked_max, 256);
        assert_eq!(cfg.strategy.name(), "adaptive-refinement");
        assert_eq!(cfg.workers, 0);
        assert!(cfg.effective_workers() >= 1);
        assert_eq!(cfg.with_workers(3).effective_workers(), 3);
    }

    #[test]
    fn enumeration_dedups_and_numbers_streams() {
        let cfg = ModelSetConfig::quick(64);
        let tasks = enumerate_build_tasks(&[Workload::Trinv, Workload::Sylv], &cfg);
        // 4 trinv tasks + sylv_unb; gemm is shared between the workloads.
        assert_eq!(tasks.len(), 5);
        for (i, task) in tasks.iter().enumerate() {
            assert_eq!(task.stream, i as u64);
        }
        let gemm_tasks = tasks
            .iter()
            .filter(|t| t.templates[0].routine() == Routine::Gemm)
            .count();
        assert_eq!(gemm_tasks, 1);
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let machine = harpertown_openblas();
        let serial_cfg = ModelSetConfig::quick(96).with_workers(1);
        let parallel_cfg = ModelSetConfig::quick(96).with_workers(4);
        let workloads = [Workload::Trinv, Workload::Sylv];
        let (serial, serial_reports) =
            build_repository(&machine, Locality::InCache, 7, &serial_cfg, &workloads);
        let (parallel, parallel_reports) =
            build_repository(&machine, Locality::InCache, 7, &parallel_cfg, &workloads);
        assert_eq!(serial.to_text().unwrap(), parallel.to_text().unwrap());
        assert_eq!(serial_reports, parallel_reports);
    }
}
