//! Building the standard model repository for the paper's workloads.

use dla_blas::{Call, Diag, Side, Trans, Uplo};
use dla_machine::{Locality, MachineConfig, SimExecutor};
use dla_model::{ModelRepository, Region};
use dla_modeler::{Modeler, ModelingReport, Strategy};

/// Which workload a repository must be able to predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Triangular inversion (`trinv`): needs `dtrmm`, `dtrsm`, `dgemm` and the
    /// unblocked triangular inversion.
    Trinv,
    /// Triangular Sylvester equation (`sylv`): needs `dgemm` and the unblocked
    /// Sylvester solver.
    Sylv,
}

/// Configuration of the repository-building step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSetConfig {
    /// Upper bound of the integer parameter space for the level-3 routines.
    pub max_size: usize,
    /// Upper bound for the unblocked kernels (the paper limits these models to
    /// sizes below 256 since they are only called on small blocks).
    pub unblocked_max: usize,
    /// Upper bound of the inner (`k`) dimension modelled for `dgemm`; in the
    /// blocked algorithms `k` never exceeds the block size, so a reduced range
    /// keeps the 3-D model cheap without losing accuracy where it matters.
    pub gemm_k_max: usize,
    /// Number of repetitions the Sampler takes per point.
    pub repetitions: usize,
    /// Model-generation strategy.
    pub strategy: Strategy,
}

impl Default for ModelSetConfig {
    fn default() -> Self {
        ModelSetConfig {
            max_size: 1024,
            unblocked_max: 256,
            gemm_k_max: 256,
            repetitions: 5,
            strategy: Strategy::paper_default(),
        }
    }
}

impl ModelSetConfig {
    /// A cheaper configuration for tests and examples: smaller spaces, fewer
    /// repetitions, coarser regions.
    pub fn quick(max_size: usize) -> ModelSetConfig {
        ModelSetConfig {
            max_size,
            unblocked_max: max_size.min(256),
            gemm_k_max: max_size.min(128),
            repetitions: 2,
            strategy: Strategy::Refinement(dla_modeler::RefinementConfig {
                error_bound: 0.10,
                min_region_size: 64,
                grid_per_dim: 4,
                degree: 2,
            }),
        }
    }
}

/// The call templates and parameter spaces a workload needs modelled.
pub fn workload_templates(workload: Workload, config: &ModelSetConfig) -> Vec<(Vec<Call>, Region)> {
    let max = config.max_size.max(16);
    let unb = config.unblocked_max.max(16);
    let kmax = config.gemm_k_max.max(16);
    let space2 = Region::new(vec![8, 8], vec![max, max]);
    let gemm_space = Region::new(vec![8, 8, 8], vec![max, max, kmax]);
    match workload {
        Workload::Trinv => vec![
            (
                vec![Call::trmm(
                    Side::Right,
                    Uplo::Lower,
                    Trans::NoTrans,
                    Diag::NonUnit,
                    8,
                    8,
                    1.0,
                )],
                space2.clone(),
            ),
            (
                vec![
                    Call::trsm(
                        Side::Left,
                        Uplo::Lower,
                        Trans::NoTrans,
                        Diag::NonUnit,
                        8,
                        8,
                        1.0,
                    ),
                    Call::trsm(
                        Side::Right,
                        Uplo::Lower,
                        Trans::NoTrans,
                        Diag::NonUnit,
                        8,
                        8,
                        1.0,
                    ),
                ],
                space2,
            ),
            (
                vec![Call::gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    8,
                    8,
                    8,
                    1.0,
                    1.0,
                )],
                gemm_space,
            ),
            (
                vec![Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 8)],
                Region::new(vec![8], vec![unb]),
            ),
        ],
        Workload::Sylv => vec![
            (
                vec![Call::gemm(
                    Trans::NoTrans,
                    Trans::NoTrans,
                    8,
                    8,
                    8,
                    1.0,
                    1.0,
                )],
                gemm_space,
            ),
            (
                vec![Call::sylv_unb(8, 8)],
                Region::new(vec![8, 8], vec![max, max]),
            ),
        ],
    }
}

/// Builds a model repository covering the given workloads on the given machine
/// and locality scenario, using the simulated executor.
///
/// Returns the repository together with the per-routine modeling reports
/// (samples used, regions, average error).
pub fn build_repository(
    machine: &MachineConfig,
    locality: Locality,
    seed: u64,
    config: &ModelSetConfig,
    workloads: &[Workload],
) -> (ModelRepository, Vec<ModelingReport>) {
    let executor = SimExecutor::new(machine.clone(), seed);
    let mut modeler = Modeler::new(executor, locality, config.repetitions, config.strategy);
    let mut repo = ModelRepository::new();
    let mut reports = Vec::new();
    let mut done: Vec<(Vec<Call>, Region)> = Vec::new();
    for &w in workloads {
        for (templates, space) in workload_templates(w, config) {
            // Avoid rebuilding a routine/space combination shared by workloads.
            let duplicate = done
                .iter()
                .any(|(t, s)| t[0].routine() == templates[0].routine() && *s == space);
            if duplicate {
                continue;
            }
            let rep = modeler.populate_repository(&mut repo, &[(templates.clone(), space.clone())]);
            reports.extend(rep);
            done.push((templates, space));
        }
    }
    (repo, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::Routine;
    use dla_machine::presets::harpertown_openblas;

    #[test]
    fn trinv_templates_cover_needed_routines() {
        let cfg = ModelSetConfig::quick(128);
        let templates = workload_templates(Workload::Trinv, &cfg);
        let routines: Vec<Routine> = templates.iter().map(|(t, _)| t[0].routine()).collect();
        assert!(routines.contains(&Routine::Trmm));
        assert!(routines.contains(&Routine::Trsm));
        assert!(routines.contains(&Routine::Gemm));
        assert!(routines.contains(&Routine::TrtriUnb));
        // the trsm entry carries both side variants
        let trsm = templates
            .iter()
            .find(|(t, _)| t[0].routine() == Routine::Trsm)
            .unwrap();
        assert_eq!(trsm.0.len(), 2);
    }

    #[test]
    fn build_quick_repository_for_both_workloads() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(96);
        let (repo, reports) = build_repository(
            &machine,
            Locality::InCache,
            1,
            &cfg,
            &[Workload::Trinv, Workload::Sylv],
        );
        // 4 routines for trinv + sylv_unb (gemm shared... distinct space so rebuilt)
        assert!(repo.len() >= 5);
        assert!(!reports.is_empty());
        let id = machine.id();
        for routine in [
            Routine::Trmm,
            Routine::Trsm,
            Routine::Gemm,
            Routine::TrtriUnb,
            Routine::SylvUnb,
        ] {
            assert!(
                repo.get(routine, &id, Locality::InCache).is_some(),
                "missing model for {routine}"
            );
        }
        assert!(repo.total_samples() > 0);
    }

    #[test]
    fn gemm_space_is_shared_between_workloads() {
        let machine = harpertown_openblas();
        let cfg = ModelSetConfig::quick(64);
        let (_, reports) = build_repository(
            &machine,
            Locality::InCache,
            1,
            &cfg,
            &[Workload::Trinv, Workload::Sylv],
        );
        let gemm_reports = reports
            .iter()
            .filter(|r| r.routine == Routine::Gemm)
            .count();
        assert_eq!(gemm_reports, 1, "gemm must only be modelled once");
    }

    #[test]
    fn default_config_is_paper_sized() {
        let cfg = ModelSetConfig::default();
        assert_eq!(cfg.max_size, 1024);
        assert_eq!(cfg.unblocked_max, 256);
        assert_eq!(cfg.strategy.name(), "adaptive-refinement");
    }
}
