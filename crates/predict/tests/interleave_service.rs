//! Model-checked concurrency invariants of [`ModelService`]'s serving hot
//! path, explored exhaustively by the vendored `interleave` checker.
//!
//! Only compiled under `--cfg interleave` (the `dla_sync` facade then routes
//! the service's shards, resolver lock and counters through the checker's
//! shim types, so these tests explore the *real* serving code):
//!
//! ```text
//! RUSTFLAGS="--cfg interleave" cargo test -p dla-predict --test interleave_service
//! ```
#![cfg(interleave)]

use dla_blas::{Call, Diag, Routine, Side, Trans, Uplo};
use dla_machine::presets::harpertown_openblas;
use dla_machine::Locality;
use dla_mat::stats::Summary;
use dla_model::sync::Arc;
use dla_model::{ModelRepository, PiecewiseModel, Region, RegionModel, RoutineModel};
use dla_predict::ModelService;

fn sample_summary(p: &[usize]) -> Summary {
    let x = p[0] as f64;
    let y = p.get(1).map(|&v| v as f64).unwrap_or(1.0);
    let median = 500.0 + x * y * 0.3 + x * 2.0;
    Summary {
        min: median * 0.9,
        mean: median,
        median,
        max: median * 1.2,
        std_dev: median * 0.05,
        count: 8,
    }
}

/// A one-region, one-submodel repository for `routine` on the harpertown
/// preset — cheap enough to compile inside every explored execution.
fn repo_with(routine: Routine, machine_id: &str) -> ModelRepository {
    let space = Region::new(vec![8, 8], vec![1024, 1024]);
    let samples: Vec<(Vec<usize>, Summary)> = space
        .sample_grid(4, 8)
        .into_iter()
        .map(|p| {
            let s = sample_summary(&p);
            (p, s)
        })
        .collect();
    let rm = RegionModel::fit(space.clone(), &samples, 2).unwrap();
    let pw = PiecewiseModel::new(space.clone(), vec![rm], samples.len());
    let mut model = RoutineModel::new(routine, machine_id, Locality::InCache, space);
    model.insert_submodel(vec![0, 0, 0], pw);
    let mut repo = ModelRepository::new();
    repo.insert(model);
    repo
}

/// Hits the `[0, 0, 0]` submodel of a Trsm model.
fn trsm_call() -> Call {
    Call::trsm(
        Side::Left,
        Uplo::Lower,
        Trans::NoTrans,
        Diag::NonUnit,
        300,
        700,
        1.0,
    )
}

/// Hits the `[0, 0, 0]` submodel of a Trmm model.
fn trmm_call() -> Call {
    Call::trmm(
        Side::Left,
        Uplo::Lower,
        Trans::NoTrans,
        Diag::NonUnit,
        300,
        700,
        1.0,
    )
}

/// Invariant: generation-reset never loses or double-counts telemetry when a
/// racing resolver reuses installed counters.  Two cold queries racing to
/// resolve the same fresh generation must end with exactly two counted
/// queries — the write-lock re-check in `ModelService::resolved` makes the
/// losing resolver adopt the winner's counter block instead of orphaning it.
#[test]
fn racing_resolvers_count_every_query() {
    let machine = harpertown_openblas();
    let repo = repo_with(Routine::Trsm, &machine.id());
    interleave::model(|| {
        let service = Arc::new(ModelService::with_shards(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
            1,
        ));
        let racer = Arc::clone(&service);
        let other = interleave::thread::spawn(move || {
            racer.predict_call(&trsm_call()).unwrap();
        });
        service.predict_call(&trsm_call()).unwrap();
        other.join().unwrap();
        assert_eq!(
            service.refinement_report().total_queries,
            2,
            "a racing resolver orphaned the other resolver's count"
        );
    });
}

/// Invariant: a hot swap racing a query never strands that query's telemetry
/// in a counter block no report will ever read.  After the race settles, the
/// report reflects at most the one racing query, and the *next* query is
/// counted exactly once on top of it — whatever interleaving the swap's
/// generation bump and cache invalidation took against the query's resolve,
/// count and cache-insert steps.
#[test]
fn swap_racing_predict_never_orphans_telemetry() {
    let machine = harpertown_openblas();
    let repo = repo_with(Routine::Trsm, &machine.id());
    interleave::model(|| {
        let service = Arc::new(ModelService::with_shards(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
            1,
        ));
        service.predict_call(&trsm_call()).unwrap();
        let swapper_service = Arc::clone(&service);
        let next = repo.clone();
        let swapper = interleave::thread::spawn(move || {
            swapper_service.swap(next).unwrap();
        });
        service.predict_call(&trsm_call()).unwrap();
        swapper.join().unwrap();
        // The racing query either counted against the dead generation or
        // against the new one — never more than once.
        let settled = service.refinement_report().total_queries;
        assert!(
            settled <= 1,
            "the racing query counted {settled} times against the new generation"
        );
        // A fresh query after the race must land in the served generation's
        // counters: if it bumps a counter block the resolver no longer owns,
        // its count is silently lost to every future refinement report.
        service.predict_call(&trsm_call()).unwrap();
        let after = service.refinement_report().total_queries;
        assert_eq!(
            after,
            settled + 1,
            "a post-swap query's count was orphaned by the swap's cache invalidation"
        );
    });
}

/// Invariant: merge-during-predict linearizes.  A query for a routine present
/// in *every* generation must succeed in every interleaving with a racing
/// merge, and once the merge returns, both the old and the merged-in routine
/// are served.
#[test]
fn merge_during_predict_linearizes() {
    let machine = harpertown_openblas();
    let repo = repo_with(Routine::Trsm, &machine.id());
    let merged = repo_with(Routine::Trmm, &machine.id());
    interleave::model(|| {
        let service = Arc::new(ModelService::with_shards(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
            1,
        ));
        service.predict_call(&trsm_call()).unwrap();
        let merger_service = Arc::clone(&service);
        let other = merged.clone();
        let merger = interleave::thread::spawn(move || {
            merger_service.merge(other).unwrap();
        });
        // Trsm is in every generation: the racing query must never observe a
        // state in which it is unserved.
        service
            .predict_call(&trsm_call())
            .expect("a routine present before and after the merge must always be served");
        merger.join().unwrap();
        service
            .predict_call(&trsm_call())
            .expect("the pre-merge routine survives the merge");
        service
            .predict_call(&trmm_call())
            .expect("the merged-in routine is served once merge returns");
    });
}

/// Invariant: toggling telemetry off during a query is a valid serialization
/// either way — the straddling query counts or it doesn't, but it can never
/// corrupt the totals, and once the toggle settles no further query counts.
#[test]
fn telemetry_toggle_races_predict_and_report() {
    let machine = harpertown_openblas();
    let repo = repo_with(Routine::Trsm, &machine.id());
    interleave::model(|| {
        let service = Arc::new(ModelService::with_shards(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
            1,
        ));
        service.predict_call(&trsm_call()).unwrap();
        let toggler_service = Arc::clone(&service);
        let toggler = interleave::thread::spawn(move || {
            toggler_service.set_telemetry_enabled(false);
            // A report racing the toggle and the query must itself read a
            // valid serialization.
            toggler_service.refinement_report().total_queries
        });
        service.predict_call(&trsm_call()).unwrap();
        let racing_total = toggler.join().unwrap();
        assert!(
            (1..=2).contains(&racing_total),
            "racing report read {racing_total} queries"
        );
        let settled = service.refinement_report().total_queries;
        assert!(
            (1..=2).contains(&settled),
            "the straddling query must count at most once ({settled})"
        );
        // The toggle has settled: further queries must not count.
        assert!(!service.telemetry_enabled());
        service.predict_call(&trsm_call()).unwrap();
        assert_eq!(service.refinement_report().total_queries, settled);
    });
}

/// A repository whose only submodel carries a NaN coefficient — every
/// publication gate must reject it.
fn poisoned_repo(machine_id: &str) -> ModelRepository {
    use dla_model::{Polynomial, VectorPolynomial};
    let space = Region::new(vec![8, 8], vec![1024, 1024]);
    let nan_poly = Polynomial::new(2, vec![vec![0, 0]], vec![f64::NAN]).unwrap();
    let poly = VectorPolynomial::new(vec![nan_poly; 5]).unwrap();
    let region = RegionModel {
        region: space.clone(),
        poly,
        error: 0.0,
        samples_used: 1,
        revision: 0,
    };
    let pw = PiecewiseModel::new(space.clone(), vec![region], 1);
    let mut model = RoutineModel::new(Routine::Trsm, machine_id, Locality::InCache, space);
    model.insert_submodel(vec![0, 0, 0], pw);
    let mut repo = ModelRepository::new();
    repo.insert(model);
    repo
}

/// Invariant: a rejected publication racing a query changes *nothing* the
/// query can observe — the served generation stays, the prediction stays
/// finite, and the health ledger accounts exactly one rejection with the
/// last good generation unchanged, in every interleaving.
#[test]
fn rejected_publish_racing_predict_keeps_serving_last_good_generation() {
    let machine = harpertown_openblas();
    let repo = repo_with(Routine::Trsm, &machine.id());
    let machine_id = machine.id();
    interleave::model(move || {
        let service = Arc::new(ModelService::with_shards(
            repo.clone(),
            machine.clone(),
            Locality::InCache,
            1,
        ));
        let baseline = service.predict_call(&trsm_call()).unwrap();
        assert!(baseline.median.is_finite());
        let good_generation = service.health().last_good_generation;
        let publisher_service = Arc::clone(&service);
        let poisoned = poisoned_repo(&machine_id);
        let publisher = interleave::thread::spawn(move || {
            publisher_service
                .swap(poisoned)
                .expect_err("the NaN repository must be rejected")
        });
        // The racing query must keep answering the last good generation,
        // with the exact same finite summary.
        let raced = service.predict_call(&trsm_call()).unwrap();
        assert_eq!(raced, baseline, "a rejected publish leaked into serving");
        publisher.join().unwrap();
        // Settled: nothing was adopted, and the ledger accounts the refusal.
        let health = service.health();
        assert_eq!(health.publishes_rejected, 1);
        assert_eq!(health.publishes_accepted, 0);
        assert_eq!(health.last_good_generation, good_generation);
        assert_eq!(service.predict_call(&trsm_call()).unwrap(), baseline);
    });
}
