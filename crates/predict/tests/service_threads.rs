//! Real-thread races over [`ModelService`]: telemetry toggling, reporting
//! and swapping concurrent with serving queries.
//!
//! These run under the normal cfg with OS threads and real contention —
//! the probabilistic complement of the exhaustive-but-bounded model suite in
//! `tests/interleave_service.rs` (which needs `--cfg interleave`).

use dla_blas::{Call, Diag, Routine, Side, Trans, Uplo};
use dla_machine::presets::harpertown_openblas;
use dla_machine::Locality;
use dla_mat::stats::Summary;
use dla_model::{ModelRepository, PiecewiseModel, Region, RegionModel, RoutineModel};
use dla_predict::ModelService;
use std::sync::Arc;

fn sample_summary(p: &[usize]) -> Summary {
    let x = p[0] as f64;
    let y = p.get(1).map(|&v| v as f64).unwrap_or(1.0);
    let median = 500.0 + x * y * 0.3 + x * 2.0;
    Summary {
        min: median * 0.9,
        mean: median,
        median,
        max: median * 1.2,
        std_dev: median * 0.05,
        count: 8,
    }
}

fn trsm_repo(machine_id: &str) -> ModelRepository {
    let space = Region::new(vec![8, 8], vec![1024, 1024]);
    let samples: Vec<(Vec<usize>, Summary)> = space
        .sample_grid(4, 8)
        .into_iter()
        .map(|p| {
            let s = sample_summary(&p);
            (p, s)
        })
        .collect();
    let rm = RegionModel::fit(space.clone(), &samples, 2).unwrap();
    let pw = PiecewiseModel::new(space.clone(), vec![rm], samples.len());
    let mut model = RoutineModel::new(Routine::Trsm, machine_id, Locality::InCache, space);
    model.insert_submodel(vec![0, 0, 0], pw);
    let mut repo = ModelRepository::new();
    repo.insert(model);
    repo
}

fn trsm_call(m: usize, n: usize) -> Call {
    Call::trsm(
        Side::Left,
        Uplo::Lower,
        Trans::NoTrans,
        Diag::NonUnit,
        m,
        n,
        1.0,
    )
}

/// Query threads hammer `predict_call` while the main thread flips the
/// telemetry switch and takes reports the whole time.  Every query must
/// succeed, every report must be internally consistent, and once the toggle
/// settles to "off" the totals must freeze.
#[test]
fn telemetry_toggle_races_serving_threads() {
    const THREADS: usize = 4;
    const QUERIES: usize = 500;

    let machine = harpertown_openblas();
    let service = Arc::new(ModelService::new(
        trsm_repo(&machine.id()),
        machine,
        Locality::InCache,
    ));

    let workers: Vec<_> = (0..THREADS)
        .map(|worker| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for i in 0..QUERIES {
                    // A handful of distinct keys per worker: plenty of cache
                    // hits (lossy counting path) and misses (exact path).
                    let m = 100 + 50 * ((worker + i) % 4);
                    service.predict_call(&trsm_call(m, 700)).unwrap();
                }
            })
        })
        .collect();

    // Race the toggle and the reporter against the serving threads.
    for round in 0..200 {
        service.set_telemetry_enabled(round % 2 == 0);
        let report = service.refinement_report();
        // Counters only ever increase and only queries bump them: the total
        // can never exceed what all workers could have issued.
        assert!(report.total_queries <= (THREADS * QUERIES) as u64);
        for cell in &report.cells {
            assert!(cell.queries > 0, "reported cells answered queries");
        }
        std::thread::yield_now();
    }
    for worker in workers {
        worker.join().unwrap();
    }

    // The service survived the races; with telemetry settled off, the
    // counters freeze no matter how many further queries arrive.
    service.set_telemetry_enabled(false);
    let frozen = service.refinement_report().total_queries;
    for _ in 0..50 {
        service.predict_call(&trsm_call(100, 700)).unwrap();
    }
    assert_eq!(service.refinement_report().total_queries, frozen);

    // And settled on, every query counts again (hit path included).
    service.set_telemetry_enabled(true);
    service.predict_call(&trsm_call(100, 700)).unwrap();
    assert!(service.refinement_report().total_queries > frozen);
}

/// Swaps race serving threads: queries must never observe a torn service
/// (they may legitimately fail only while an *empty* repository is
/// installed — here every generation serves Trsm, so they must all succeed),
/// and each settled generation's report starts from a clean slate.
#[test]
fn swaps_race_serving_threads() {
    const THREADS: usize = 4;
    const QUERIES: usize = 300;

    let machine = harpertown_openblas();
    let machine_id = machine.id();
    let service = Arc::new(ModelService::new(
        trsm_repo(&machine_id),
        machine,
        Locality::InCache,
    ));

    let workers: Vec<_> = (0..THREADS)
        .map(|worker| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for i in 0..QUERIES {
                    let m = 100 + 50 * ((worker + i) % 4);
                    service.predict_call(&trsm_call(m, 700)).unwrap();
                }
            })
        })
        .collect();

    for _ in 0..30 {
        service.swap(trsm_repo(&machine_id)).unwrap();
        std::thread::yield_now();
    }
    for worker in workers {
        worker.join().unwrap();
    }

    // Quiesced: a fresh query after the last swap must be counted exactly
    // once on top of whatever the racing queries left in this generation —
    // the regression the model checker pinned down (see
    // `swap_racing_predict_never_orphans_telemetry`).
    let settled = service.refinement_report().total_queries;
    service.predict_call(&trsm_call(100, 700)).unwrap();
    assert_eq!(service.refinement_report().total_queries, settled + 1);
}
