//! Model-checked concurrency invariants of the fleet tier's breaker state
//! machine and last-good snapshot slot, explored exhaustively by the
//! vendored `interleave` checker.
//!
//! Only compiled under `--cfg interleave` (the `dla_sync` facade then routes
//! the breaker word and the snapshot slot's lock through the checker's shim
//! types, so these tests explore the *real* fleet code):
//!
//! ```text
//! RUSTFLAGS="--cfg interleave" cargo test -p dla-predict --test interleave_fleet
//! ```

#![cfg(interleave)]

use dla_model::sync::Arc;
use dla_model::{CompiledRepository, LastGoodSnapshot, ModelRepository};
use dla_predict::{Admission, BreakerConfig, BreakerState, CircuitBreaker};

fn config() -> BreakerConfig {
    BreakerConfig {
        degraded_threshold: 2,
        down_threshold: 2,
        cooldown: 1,
        ledger_quarantine_limit: 0,
    }
}

/// Invariant: two failure recorders racing at the Healthy → Degraded
/// threshold trip the breaker **exactly once** — the packed-word CAS makes
/// one recorder the trip winner and the other a plain strike, in every
/// interleaving.
#[test]
fn racing_failures_trip_exactly_once() {
    interleave::model(|| {
        let breaker = Arc::new(CircuitBreaker::new());
        let cfg = config();
        breaker.record_failure(&cfg); // one strike on the board
        let racer = Arc::clone(&breaker);
        let racer_cfg = cfg.clone();
        let other = interleave::thread::spawn(move || {
            racer.record_failure(&racer_cfg);
        });
        breaker.record_failure(&cfg);
        other.join().unwrap();
        // Three strikes against thresholds (2, 2): Degraded after the
        // second, one more strike toward Down — never two Degraded trips,
        // and the third strike alone can reach Down at most once.
        let stats = breaker.stats();
        assert_eq!(stats.trips_degraded, 1, "the Degraded trip must count once");
        assert!(stats.trips_down <= 1);
        assert!(matches!(
            stats.state,
            BreakerState::Degraded | BreakerState::Down
        ));
    });
}

/// Invariant: when a Down breaker's cooldown expires, concurrent admitters
/// claim **exactly one** half-open probe — the probe CAS re-arms the
/// cooldown, so the loser is rejected, in every interleaving.
#[test]
fn concurrent_admits_claim_one_probe() {
    interleave::model(|| {
        let breaker = Arc::new(CircuitBreaker::new());
        let cfg = config();
        // Healthy → Degraded → Down (thresholds 2/2), then burn the
        // one-query cooldown so the probe slot is open.
        for _ in 0..4 {
            breaker.record_failure(&cfg);
        }
        assert_eq!(breaker.state(), BreakerState::Down);
        assert_eq!(breaker.admit(&cfg), Admission::Reject);

        let racer = Arc::clone(&breaker);
        let racer_cfg = cfg.clone();
        let other = interleave::thread::spawn(move || racer.admit(&racer_cfg));
        let mine = breaker.admit(&cfg);
        let theirs = other.join().unwrap();
        let probes = [mine, theirs]
            .iter()
            .filter(|&&a| a == Admission::Probe)
            .count();
        assert_eq!(probes, 1, "exactly one admitter may win the probe slot");
        assert!(!matches!(mine, Admission::Allow));
        assert!(!matches!(theirs, Admission::Allow));
        assert_eq!(breaker.stats().probes, 1);
    });
}

/// Invariant: a success racing a failure on a Degraded breaker settles into
/// a valid serialization — either the success landed last (Healthy, one
/// recovery) or the failure did (still broken, no phantom recovery) — and
/// the recovery is never double-counted.
#[test]
fn success_racing_failure_serializes() {
    interleave::model(|| {
        let breaker = Arc::new(CircuitBreaker::new());
        let cfg = config();
        breaker.record_failure(&cfg);
        breaker.record_failure(&cfg);
        assert_eq!(breaker.state(), BreakerState::Degraded);
        let racer = Arc::clone(&breaker);
        let racer_cfg = cfg.clone();
        let other = interleave::thread::spawn(move || {
            racer.record_failure(&racer_cfg);
        });
        breaker.record_success();
        other.join().unwrap();
        let stats = breaker.stats();
        assert_eq!(stats.recoveries, 1, "the recovery must count exactly once");
        // Failure-last leaves one strike on a Healthy board (or the failure
        // ran first and the success wiped a Down board) — every
        // serialization lands in one of these states.
        assert!(matches!(
            stats.state,
            BreakerState::Healthy | BreakerState::Down
        ));
    });
}

/// Invariant: two retainers racing the last-good slot with different
/// generations never tear it and never regress it — the slot always ends at
/// the newer generation holding that generation's snapshot.
#[test]
fn racing_retainers_keep_the_slot_monotone() {
    interleave::model(|| {
        let slot = Arc::new(LastGoodSnapshot::new());
        let older = Arc::new(CompiledRepository::compile(ModelRepository::new()));
        let newer = Arc::new(CompiledRepository::compile(ModelRepository::new()));
        let racer_slot = Arc::clone(&slot);
        let racer_snapshot = Arc::clone(&newer);
        let other = interleave::thread::spawn(move || {
            racer_slot.retain(2, racer_snapshot);
        });
        slot.retain(1, Arc::clone(&older));
        other.join().unwrap();
        let (generation, held) = slot.get().expect("the slot must hold a snapshot");
        assert_eq!(generation, 2, "the newer generation must win every race");
        assert!(
            Arc::ptr_eq(&held, &newer),
            "the held snapshot must be the one retained with generation 2"
        );
    });
}
