//! Performance signatures of BLAS implementations.
//!
//! The paper models three libraries (OpenBLAS, MKL, ATLAS) whose performance
//! differs in asymptotic efficiency, sensitivity to small dimensions, internal
//! blocking kinks, call overheads and measurement noise.  A [`BlasProfile`]
//! captures exactly those degrees of freedom for the simulated machine; the
//! presets are calibrated to reproduce the qualitative signatures reported in
//! the paper (see `EXPERIMENTS.md`), not the absolute tick counts of any
//! specific library version.

use dla_blas::{Call, Routine};

/// Per-routine performance parameters of an implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutineParams {
    /// Asymptotic fraction of peak the kernel reaches for large, well-shaped
    /// problems (0..1).
    pub peak_efficiency: f64,
    /// Dimension at which the kernel reaches half of its asymptotic
    /// efficiency (the saturation constant of the `d / (d + k0)` curve).
    pub half_dim: f64,
    /// Fraction of the ideal speedup retained when the call runs on multiple
    /// threads (0..1); models how well the kernel's shape parallelises.
    pub parallel_efficiency: f64,
    /// Optional locality decay: when set, the efficiency is additionally
    /// multiplied by `decay / (decay + max_dim)`.  Used for unblocked,
    /// level-2-like kernels whose working set grows with the problem and whose
    /// cache behaviour therefore degrades sharply on long panels.
    pub large_dim_decay: Option<f64>,
}

impl RoutineParams {
    /// Creates a parameter set.
    pub fn new(peak_efficiency: f64, half_dim: f64, parallel_efficiency: f64) -> RoutineParams {
        RoutineParams {
            peak_efficiency,
            half_dim,
            parallel_efficiency,
            large_dim_decay: None,
        }
    }

    /// Adds a locality-decay constant (see [`RoutineParams::large_dim_decay`]).
    pub fn with_large_dim_decay(mut self, decay: f64) -> RoutineParams {
        self.large_dim_decay = Some(decay);
        self
    }
}

/// The performance signature of one BLAS implementation on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct BlasProfile {
    /// Implementation name ("openblas-like", ...).
    pub name: String,
    /// Per-routine parameters for `dgemm`.
    pub gemm: RoutineParams,
    /// Per-routine parameters for `dtrsm`.
    pub trsm: RoutineParams,
    /// Per-routine parameters for `dtrmm`.
    pub trmm: RoutineParams,
    /// Per-routine parameters for `dsyrk`.
    pub syrk: RoutineParams,
    /// Per-routine parameters for the unblocked triangular inversion.
    pub trtri_unb: RoutineParams,
    /// Per-routine parameters for the unblocked Sylvester solve.
    pub sylv_unb: RoutineParams,
    /// Fixed cost of every library call, in cycles.
    pub call_overhead_cycles: f64,
    /// Extra cycles per spawned worker when the call runs multi-threaded.
    pub thread_spawn_cycles: f64,
    /// Relative efficiency spread across flag combinations (0 = flags do not
    /// matter, 0.15 = up to 15 % between the best and worst combination).
    pub flag_spread: f64,
    /// Internal blocking dimension: crossing a multiple of it costs a small
    /// efficiency dip (creates the kinks visible in the paper's Fig. III.2/3).
    pub internal_block: usize,
    /// Relative efficiency lost right after crossing an internal-block
    /// boundary.
    pub block_kink_drop: f64,
    /// Extra slowdown factor applied to out-of-cache executions of small
    /// working sets (latency-dominated regime).
    pub out_of_cache_small_penalty: f64,
    /// Residual out-of-cache slowdown for large working sets (streaming
    /// regime).
    pub out_of_cache_stream_penalty: f64,
    /// Relative standard deviation of the multiplicative measurement noise.
    pub noise_sigma: f64,
    /// Probability that a measurement is an outlier.
    pub outlier_probability: f64,
    /// Multiplicative slowdown of an outlier measurement.
    pub outlier_factor: f64,
    /// Multiplicative slowdown of the very first call into the library
    /// (initialisation cost, paper Section II-B).
    pub init_overhead_factor: f64,
}

impl BlasProfile {
    /// Parameters for a given routine.
    pub fn routine_params(&self, routine: Routine) -> RoutineParams {
        match routine {
            Routine::Gemm => self.gemm,
            Routine::Trsm => self.trsm,
            Routine::Trmm => self.trmm,
            Routine::Syrk => self.syrk,
            Routine::TrtriUnb => self.trtri_unb,
            Routine::SylvUnb => self.sylv_unb,
        }
    }

    /// Deterministic efficiency factor in `[1 - flag_spread, 1]` for the flag
    /// combination of `call`.
    ///
    /// The paper observes (Fig. III.1) that flag combinations affect
    /// performance with no obvious pattern, except that `diag` has only a
    /// minor impact.  We reproduce that with a small hash of the flag indices,
    /// where the last flag of `dtrsm`/`dtrmm` (`diag`) is given a much smaller
    /// weight.
    pub fn flag_factor(&self, call: &Call) -> f64 {
        let (flags, flag_len) = call.flag_indices_fixed();
        let flags = &flags[..flag_len];
        if flags.is_empty() || self.flag_spread == 0.0 {
            return 1.0;
        }
        let routine = call.routine();
        let mut h: u64 = 0xcbf29ce484222325 ^ (routine as u64).wrapping_mul(0x100000001b3);
        let diag_position = match routine {
            Routine::Trsm | Routine::Trmm => Some(3),
            Routine::TrtriUnb => Some(1),
            _ => None,
        };
        let mut diag_value = 0usize;
        for (i, &f) in flags.iter().enumerate() {
            if Some(i) == diag_position {
                diag_value = f as usize;
                continue;
            }
            h ^= (f as u64 + 1)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .rotate_left(i as u32 * 13);
            h = h.wrapping_mul(0x100000001b3);
        }
        // Mix the profile name so different implementations rank flag
        // combinations differently (as in the paper).
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let major = 1.0 - self.flag_spread * unit;
        // `diag` contributes at most a tenth of the spread.
        let minor = 1.0 - self.flag_spread * 0.1 * diag_value as f64;
        major * minor
    }
}

/// An OpenBLAS-like profile: high asymptotic efficiency, modest call
/// overhead, clearly visible internal-blocking kinks, low noise.
pub fn openblas_like() -> BlasProfile {
    BlasProfile {
        name: "openblas-like".to_string(),
        gemm: RoutineParams::new(0.90, 24.0, 0.85),
        trsm: RoutineParams::new(0.80, 28.0, 0.75),
        trmm: RoutineParams::new(0.83, 26.0, 0.80),
        syrk: RoutineParams::new(0.85, 26.0, 0.80),
        trtri_unb: RoutineParams::new(0.16, 12.0, 0.20).with_large_dim_decay(512.0),
        sylv_unb: RoutineParams::new(0.24, 20.0, 0.20).with_large_dim_decay(96.0),
        call_overhead_cycles: 2_000.0,
        thread_spawn_cycles: 12_000.0,
        flag_spread: 0.12,
        internal_block: 512,
        block_kink_drop: 0.06,
        out_of_cache_small_penalty: 1.6,
        out_of_cache_stream_penalty: 0.18,
        noise_sigma: 0.025,
        outlier_probability: 0.015,
        outlier_factor: 1.9,
        init_overhead_factor: 14.0,
    }
}

/// An MKL-like profile: the highest asymptotic efficiency and the fastest
/// saturation, slightly larger noise.
pub fn mkl_like() -> BlasProfile {
    BlasProfile {
        name: "mkl-like".to_string(),
        gemm: RoutineParams::new(0.93, 18.0, 0.88),
        trsm: RoutineParams::new(0.86, 20.0, 0.80),
        trmm: RoutineParams::new(0.86, 20.0, 0.82),
        syrk: RoutineParams::new(0.88, 20.0, 0.82),
        trtri_unb: RoutineParams::new(0.18, 10.0, 0.22).with_large_dim_decay(512.0),
        sylv_unb: RoutineParams::new(0.26, 18.0, 0.22).with_large_dim_decay(104.0),
        call_overhead_cycles: 3_000.0,
        thread_spawn_cycles: 10_000.0,
        flag_spread: 0.10,
        internal_block: 384,
        block_kink_drop: 0.03,
        out_of_cache_small_penalty: 1.2,
        out_of_cache_stream_penalty: 0.12,
        noise_sigma: 0.035,
        outlier_probability: 0.02,
        outlier_factor: 1.7,
        init_overhead_factor: 18.0,
    }
}

/// An ATLAS-like profile: noticeably lower asymptotic efficiency, slower
/// saturation, higher noise — the weakest of the three implementations.
pub fn atlas_like() -> BlasProfile {
    BlasProfile {
        name: "atlas-like".to_string(),
        gemm: RoutineParams::new(0.72, 40.0, 0.70),
        trsm: RoutineParams::new(0.60, 44.0, 0.62),
        trmm: RoutineParams::new(0.62, 42.0, 0.65),
        syrk: RoutineParams::new(0.66, 42.0, 0.65),
        trtri_unb: RoutineParams::new(0.12, 14.0, 0.18).with_large_dim_decay(448.0),
        sylv_unb: RoutineParams::new(0.20, 24.0, 0.18).with_large_dim_decay(80.0),
        call_overhead_cycles: 4_000.0,
        thread_spawn_cycles: 16_000.0,
        flag_spread: 0.15,
        internal_block: 256,
        block_kink_drop: 0.05,
        out_of_cache_small_penalty: 2.1,
        out_of_cache_stream_penalty: 0.25,
        noise_sigma: 0.045,
        outlier_probability: 0.03,
        outlier_factor: 2.2,
        init_overhead_factor: 11.0,
    }
}

/// A Sandy Bridge flavour of the OpenBLAS-like profile.
///
/// Compared to the Harpertown flavour, the triangular level-3 kernels are
/// relatively stronger and `dgemm` with a thin inner dimension saturates more
/// slowly — this reproduces the paper's observation (Fig. IV.3) that on Sandy
/// Bridge the trmm-dominated variant 1 becomes the fastest triangular-inversion
/// variant while the gemm-dominated variant 3 loses its lead.
pub fn openblas_like_sandy_bridge() -> BlasProfile {
    let mut p = openblas_like();
    p.name = "openblas-like-snb".to_string();
    p.gemm = RoutineParams::new(0.82, 90.0, 0.70);
    p.trsm = RoutineParams::new(0.84, 36.0, 0.85);
    p.trmm = RoutineParams::new(0.88, 30.0, 0.88);
    p.syrk = RoutineParams::new(0.84, 34.0, 0.80);
    p.internal_block = 768;
    p.block_kink_drop = 0.04;
    p
}

/// The multi-threaded flavour of the Sandy Bridge OpenBLAS-like profile.
///
/// Thread-spawn costs are significant and the thin rank-`b` `dgemm` updates of
/// the blocked algorithms parallelise poorly compared to the large triangular
/// solves, which is what produces the variant re-ordering and the
/// variant-3/variant-4 crossover of the paper's Fig. IV.4.
pub fn openblas_like_sandy_bridge_threaded() -> BlasProfile {
    let mut p = openblas_like_sandy_bridge();
    p.name = "openblas-like-snb-mt".to_string();
    p.gemm.parallel_efficiency = 0.28;
    p.trsm.parallel_efficiency = 0.80;
    p.trmm.parallel_efficiency = 0.85;
    p.syrk.parallel_efficiency = 0.70;
    p.trtri_unb.parallel_efficiency = 0.10;
    p.sylv_unb.parallel_efficiency = 0.10;
    p.thread_spawn_cycles = 30_000.0;
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::{Diag, Side, Trans, Uplo};

    #[test]
    fn presets_are_ordered_as_expected() {
        let o = openblas_like();
        let m = mkl_like();
        let a = atlas_like();
        assert!(m.gemm.peak_efficiency > o.gemm.peak_efficiency);
        assert!(o.gemm.peak_efficiency > a.gemm.peak_efficiency);
        // unblocked kernels are much less efficient than level-3 kernels
        assert!(o.trtri_unb.peak_efficiency < 0.3 * o.gemm.peak_efficiency);
    }

    #[test]
    fn routine_params_dispatch() {
        let p = openblas_like();
        assert_eq!(p.routine_params(Routine::Gemm), p.gemm);
        assert_eq!(p.routine_params(Routine::SylvUnb), p.sylv_unb);
        assert_eq!(p.routine_params(Routine::TrtriUnb), p.trtri_unb);
    }

    #[test]
    fn flag_factor_is_deterministic_and_bounded() {
        let p = openblas_like();
        let c = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            256,
            256,
            0.5,
        );
        let f1 = p.flag_factor(&c);
        let f2 = p.flag_factor(&c);
        assert_eq!(f1, f2);
        assert!(f1 > 1.0 - p.flag_spread * 1.2 && f1 <= 1.0);
    }

    #[test]
    fn diag_flag_has_minor_impact() {
        let p = openblas_like();
        let base = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            256,
            256,
            0.5,
        );
        let unit = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            256,
            256,
            0.5,
        );
        let other = Call::trsm(
            Side::Right,
            Uplo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            256,
            256,
            0.5,
        );
        let d_diag = (p.flag_factor(&base) - p.flag_factor(&unit)).abs();
        let d_major = (p.flag_factor(&base) - p.flag_factor(&other)).abs();
        assert!(d_diag <= p.flag_spread * 0.1 + 1e-12);
        // major flags generally move the factor more than diag does
        assert!(d_major + 1e-12 >= d_diag);
    }

    #[test]
    fn different_implementations_rank_flags_differently_or_equal() {
        // The factor depends on the profile name, so at least one combination
        // differs between two implementations.
        let o = openblas_like();
        let m = mkl_like();
        let mut any_diff = false;
        for side in Side::VALUES {
            for uplo in Uplo::VALUES {
                for trans in Trans::VALUES {
                    let c = Call::trsm(side, uplo, trans, Diag::NonUnit, 128, 128, 1.0);
                    if (o.flag_factor(&c) - m.flag_factor(&c)).abs() > 1e-6 {
                        any_diff = true;
                    }
                }
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn gemm_without_flag_spread_is_unaffected() {
        let mut p = openblas_like();
        p.flag_spread = 0.0;
        let c = Call::gemm(Trans::NoTrans, Trans::Trans, 64, 64, 64, 1.0, 0.0);
        assert_eq!(p.flag_factor(&c), 1.0);
    }

    #[test]
    fn sandy_bridge_profiles_shift_the_balance() {
        let h = openblas_like();
        let s = openblas_like_sandy_bridge();
        assert!(h.gemm.peak_efficiency > h.trmm.peak_efficiency);
        assert!(s.trmm.peak_efficiency > s.gemm.peak_efficiency);
        let t = openblas_like_sandy_bridge_threaded();
        assert!(t.gemm.parallel_efficiency < t.trsm.parallel_efficiency);
    }
}
