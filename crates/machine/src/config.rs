//! Machine configurations and measurement records.

use crate::counters::CounterSet;
use crate::{BlasProfile, CpuSpec};

/// Memory-locality scenario of a measurement (paper Section II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locality {
    /// All operands reside in the lowest cache level that can hold them.
    InCache,
    /// All operands reside in main memory.
    OutOfCache,
}

impl Locality {
    /// Both scenarios.
    pub const ALL: [Locality; 2] = [Locality::InCache, Locality::OutOfCache];

    /// Short name used in reports and the model repository.
    pub fn name(&self) -> &'static str {
        match self {
            Locality::InCache => "in-cache",
            Locality::OutOfCache => "out-of-cache",
        }
    }

    /// Parses a locality from its short name.
    pub fn from_name(name: &str) -> Option<Locality> {
        Locality::ALL.into_iter().find(|l| l.name() == name)
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A complete execution environment: CPU, BLAS implementation signature and
/// the number of threads the library uses.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// The CPU description.
    pub cpu: CpuSpec,
    /// The BLAS implementation signature.
    pub blas: BlasProfile,
    /// Number of threads the BLAS library uses (1 = sequential).
    pub threads: usize,
}

impl MachineConfig {
    /// Creates a configuration.
    pub fn new(cpu: CpuSpec, blas: BlasProfile, threads: usize) -> MachineConfig {
        MachineConfig {
            cpu,
            blas,
            threads: threads.max(1),
        }
    }

    /// Effective number of worker threads (capped at the physical core count).
    pub fn effective_threads(&self) -> usize {
        self.threads.clamp(1, self.cpu.cores)
    }

    /// Peak flops per cycle of the resource set used by this configuration
    /// (`fips` in the paper's efficiency formula, summed over the used cores).
    pub fn peak_flops_per_cycle(&self) -> f64 {
        self.cpu.peak_flops_per_cycle(self.effective_threads())
    }

    /// Converts ticks into the paper's `efficiency` metric for a computation
    /// performing `useful_flops` floating-point operations.
    pub fn efficiency(&self, useful_flops: f64, ticks: f64) -> f64 {
        if ticks <= 0.0 {
            return 0.0;
        }
        useful_flops / (ticks * self.peak_flops_per_cycle())
    }

    /// A short identifier combining CPU, implementation and thread count,
    /// used to key the model repository.
    pub fn id(&self) -> String {
        format!(
            "{}+{}+{}t",
            self.cpu.name.replace(' ', "_"),
            self.blas.name,
            self.effective_threads()
        )
    }
}

/// The result of executing (or simulating) one routine call.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Elapsed time in clock ticks (the paper's primary metric).
    pub ticks: f64,
    /// Floating-point operations performed by the call.
    pub flops: f64,
    /// Virtual hardware counters associated with the execution.
    pub counters: CounterSet,
}

impl Measurement {
    /// Efficiency of this single measurement under the given configuration.
    pub fn efficiency(&self, machine: &MachineConfig) -> f64 {
        machine.efficiency(self.flops, self.ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blasprofile::openblas_like;

    #[test]
    fn locality_names_roundtrip() {
        for l in Locality::ALL {
            assert_eq!(Locality::from_name(l.name()), Some(l));
        }
        assert_eq!(Locality::from_name("bogus"), None);
        assert_eq!(Locality::InCache.to_string(), "in-cache");
    }

    #[test]
    fn effective_threads_capped() {
        let m = MachineConfig::new(CpuSpec::harpertown(), openblas_like(), 16);
        assert_eq!(m.effective_threads(), 4);
        let m = MachineConfig::new(CpuSpec::harpertown(), openblas_like(), 0);
        assert_eq!(m.effective_threads(), 1);
        assert_eq!(m.peak_flops_per_cycle(), 4.0);
    }

    #[test]
    fn efficiency_formula() {
        let m = MachineConfig::new(CpuSpec::harpertown(), openblas_like(), 1);
        // 4 flops/cycle peak: 400 flops in 200 ticks = 50 % efficiency
        assert!((m.efficiency(400.0, 200.0) - 0.5).abs() < 1e-12);
        assert_eq!(m.efficiency(400.0, 0.0), 0.0);
    }

    #[test]
    fn id_mentions_all_components() {
        let m = MachineConfig::new(CpuSpec::sandy_bridge(), openblas_like(), 8);
        let id = m.id();
        assert!(id.contains("Sandy_Bridge"));
        assert!(id.contains("openblas-like"));
        assert!(id.contains("8t"));
    }
}
