//! Virtual hardware counters (the PAPI substitute).
//!
//! The paper reads hardware performance counters through PAPI; only the time
//! stamp counter (`ticks`) ends up being used by the models, but the Sampler
//! exposes a richer set.  The simulated machine produces analogous *virtual*
//! counters estimated from the cost model: flop counts, per-level cache
//! traffic and miss estimates.

/// Names of the virtual counters, loosely mirroring PAPI preset events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Clock ticks (RDTSC equivalent).
    Ticks,
    /// Double-precision floating-point operations.
    Flops,
    /// Estimated level-1 data-cache misses.
    L1Misses,
    /// Estimated last-level-cache misses.
    LlcMisses,
    /// Estimated bytes transferred from/to main memory.
    DramBytes,
}

impl Counter {
    /// All counters in reporting order.
    pub const ALL: [Counter; 5] = [
        Counter::Ticks,
        Counter::Flops,
        Counter::L1Misses,
        Counter::LlcMisses,
        Counter::DramBytes,
    ];

    /// PAPI-style name of the counter.
    pub fn name(&self) -> &'static str {
        match self {
            Counter::Ticks => "TICKS",
            Counter::Flops => "PAPI_DP_OPS",
            Counter::L1Misses => "PAPI_L1_DCM",
            Counter::LlcMisses => "PAPI_LLC_MISS",
            Counter::DramBytes => "DRAM_BYTES",
        }
    }
}

/// A set of virtual counter readings for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterSet {
    /// Clock ticks.
    pub ticks: f64,
    /// Floating-point operations.
    pub flops: f64,
    /// Estimated L1 misses.
    pub l1_misses: f64,
    /// Estimated last-level-cache misses.
    pub llc_misses: f64,
    /// Estimated DRAM traffic in bytes.
    pub dram_bytes: f64,
}

impl CounterSet {
    /// Reads one counter by name.
    pub fn get(&self, counter: Counter) -> f64 {
        match counter {
            Counter::Ticks => self.ticks,
            Counter::Flops => self.flops,
            Counter::L1Misses => self.l1_misses,
            Counter::LlcMisses => self.llc_misses,
            Counter::DramBytes => self.dram_bytes,
        }
    }

    /// Adds another counter set (used when accumulating a trace).
    pub fn accumulate(&mut self, other: &CounterSet) {
        self.ticks += other.ticks;
        self.flops += other.flops;
        self.l1_misses += other.l1_misses;
        self.llc_misses += other.llc_misses;
        self.dram_bytes += other.dram_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique() {
        let names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn get_and_accumulate() {
        let mut a = CounterSet {
            ticks: 10.0,
            flops: 20.0,
            l1_misses: 1.0,
            llc_misses: 2.0,
            dram_bytes: 3.0,
        };
        let b = CounterSet {
            ticks: 1.0,
            flops: 2.0,
            l1_misses: 0.5,
            llc_misses: 0.5,
            dram_bytes: 0.5,
        };
        a.accumulate(&b);
        assert_eq!(a.get(Counter::Ticks), 11.0);
        assert_eq!(a.get(Counter::Flops), 22.0);
        assert_eq!(a.get(Counter::L1Misses), 1.5);
        assert_eq!(a.get(Counter::LlcMisses), 2.5);
        assert_eq!(a.get(Counter::DramBytes), 3.5);
        assert_eq!(CounterSet::default().get(Counter::Ticks), 0.0);
    }
}
