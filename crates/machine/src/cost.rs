//! The deterministic analytical cost model.
//!
//! Given a machine configuration, a routine call and a memory-locality
//! scenario, [`estimate_ticks`] returns the modelled execution time in clock
//! ticks.  The model is a roofline with several refinements chosen so the
//! phenomena the paper's methodology depends on are present:
//!
//! * **Kernel efficiency** saturates with the smallest size argument
//!   (`d / (d + k0)`), is scaled by an implementation-specific asymptotic
//!   peak per routine, and by a deterministic flag-combination factor.
//! * **Cache-capacity steps**: the operand working set determines which cache
//!   level serves the data; crossing a capacity boundary lowers the memory
//!   bandwidth and therefore introduces kinks in the ticks-vs-size curves.
//! * **Internal blocking kinks**: crossing multiples of the implementation's
//!   internal block size costs a small efficiency dip.
//! * **Out-of-cache penalty**: latency-dominated for small working sets and a
//!   residual streaming cost for large ones.
//! * **Multi-threading**: the compute part scales with the per-routine
//!   parallel efficiency, a per-call spawn cost is added, and DRAM bandwidth
//!   is shared among threads.
//! * **Call overhead**: every call pays a fixed cost, which is what makes very
//!   small block sizes unattractive in the block-size tuning experiments.
//!
//! The stochastic layer (noise, outliers, library initialisation) lives in the
//! executor, not here: the cost model itself is deterministic so that tests
//! and the Modeler's reference grids are reproducible.

use dla_blas::{flops::is_empty_call, Call};

use crate::counters::CounterSet;
use crate::{Locality, MachineConfig};

/// Deterministic kernel efficiency (fraction of peak) for a call.
pub fn kernel_efficiency(machine: &MachineConfig, call: &Call) -> f64 {
    let profile = &machine.blas;
    let params = profile.routine_params(call.routine());
    let (sizes, size_len) = call.sizes_fixed();
    let sizes = &sizes[..size_len];
    let min_dim = sizes.iter().copied().filter(|&s| s > 0).min().unwrap_or(0);
    if min_dim == 0 {
        return params.peak_efficiency * 0.01;
    }
    let max_dim = sizes.iter().copied().max().unwrap_or(min_dim);

    // Saturation with the smallest dimension.
    let saturation = min_dim as f64 / (min_dim as f64 + params.half_dim);

    // Mild penalty for very skewed shapes (panel-like operands reach a lower
    // fraction of peak than square ones).
    let aspect = max_dim as f64 / min_dim as f64;
    let shape_factor = 1.0 / (1.0 + 0.04 * aspect.ln().max(0.0));

    // Internal blocking: right after crossing a multiple of the internal block
    // size the kernel runs with a partially filled tile.
    let ib = profile.internal_block.max(1);
    let remainder = max_dim % ib;
    let kink_factor = if max_dim >= ib && remainder > 0 && remainder < ib / 4 {
        1.0 - profile.block_kink_drop
    } else {
        1.0
    };

    let flag_factor = profile.flag_factor(call);

    // Locality decay for unblocked, level-2-like kernels: their efficiency
    // collapses on long panels whose columns no longer fit in cache.
    let decay_factor = match params.large_dim_decay {
        Some(decay) => decay / (decay + max_dim as f64),
        None => 1.0,
    };

    (params.peak_efficiency * saturation * shape_factor * kink_factor * flag_factor * decay_factor)
        .max(1e-4)
}

/// Memory bandwidth (bytes per cycle) and latency (cycles) that serve the
/// call's working set under the given locality.
fn memory_channel(machine: &MachineConfig, bytes: usize, locality: Locality) -> (f64, f64) {
    match locality {
        Locality::InCache => match machine.cpu.smallest_fitting_cache(bytes) {
            Some(level) => (level.bandwidth_bytes_per_cycle, level.latency_cycles),
            None => (
                machine.cpu.dram_bandwidth_bytes_per_cycle,
                machine.cpu.dram_latency_cycles,
            ),
        },
        Locality::OutOfCache => (
            machine.cpu.dram_bandwidth_bytes_per_cycle,
            machine.cpu.dram_latency_cycles,
        ),
    }
}

/// Out-of-cache slowdown factor: latency-dominated for small working sets,
/// residual streaming overhead for large ones.
fn out_of_cache_factor(machine: &MachineConfig, bytes: usize) -> f64 {
    let profile = &machine.blas;
    let reference = machine
        .cpu
        .last_level_cache()
        .map(|c| c.size_bytes as f64)
        .unwrap_or(1.0e6);
    let smallness = (-(bytes as f64) / reference).exp();
    1.0 + profile.out_of_cache_small_penalty * smallness + profile.out_of_cache_stream_penalty
}

/// Detailed breakdown of a cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Total estimated ticks.
    pub ticks: f64,
    /// Ticks attributable to computation.
    pub compute_ticks: f64,
    /// Ticks attributable to data movement.
    pub memory_ticks: f64,
    /// Fixed per-call overhead (including thread spawning).
    pub overhead_ticks: f64,
    /// Kernel efficiency used for the compute term.
    pub efficiency: f64,
    /// Bytes assumed to move through the serving memory level.
    pub bytes_moved: f64,
}

/// Estimates the execution time of `call` in ticks, with a breakdown.
pub fn estimate_cost(machine: &MachineConfig, call: &Call, locality: Locality) -> CostBreakdown {
    let profile = &machine.blas;
    let threads = machine.effective_threads();

    if is_empty_call(call) {
        let overhead = profile.call_overhead_cycles;
        return CostBreakdown {
            ticks: overhead,
            compute_ticks: 0.0,
            memory_ticks: 0.0,
            overhead_ticks: overhead,
            efficiency: 0.0,
            bytes_moved: 0.0,
        };
    }

    let flops = call.flops();
    let eff = kernel_efficiency(machine, call);
    let params = profile.routine_params(call.routine());

    // Sequential compute time.
    let compute_seq = flops / (machine.cpu.flops_per_cycle * eff);

    // Parallel compute time: ideal scaling damped by the routine's parallel
    // efficiency, plus a spawn cost per extra worker.
    let (compute, spawn_overhead) = if threads > 1 {
        let speedup = 1.0 + (threads as f64 - 1.0) * params.parallel_efficiency;
        (
            compute_seq / speedup,
            profile.thread_spawn_cycles * (threads as f64 - 1.0),
        )
    } else {
        (compute_seq, 0.0)
    };

    // Memory time.
    let bytes = call.operand_bytes();
    let (bw_per_core, latency) = memory_channel(machine, bytes, locality);
    // Cache bandwidth scales with the number of cores touching private
    // caches; DRAM bandwidth is shared.
    let dram_bound =
        (bw_per_core - machine.cpu.dram_bandwidth_bytes_per_cycle).abs() < f64::EPSILON;
    let total_bw = if dram_bound {
        bw_per_core
    } else {
        bw_per_core * threads as f64
    };
    let memory = bytes as f64 / total_bw + latency;

    let overhead = profile.call_overhead_cycles + spawn_overhead;

    // Compute and memory partially overlap; the non-dominant term leaks a
    // quarter of its cost into the total.
    let mut ticks = compute.max(memory) + 0.25 * compute.min(memory) + overhead;
    if matches!(locality, Locality::OutOfCache) {
        ticks *= out_of_cache_factor(machine, bytes);
    }

    CostBreakdown {
        ticks,
        compute_ticks: compute,
        memory_ticks: memory,
        overhead_ticks: overhead,
        efficiency: eff,
        bytes_moved: bytes as f64,
    }
}

/// Estimates the execution time of `call` in ticks.
pub fn estimate_ticks(machine: &MachineConfig, call: &Call, locality: Locality) -> f64 {
    estimate_cost(machine, call, locality).ticks
}

/// Derives the virtual counter set for a deterministic cost estimate.
pub fn estimate_counters(machine: &MachineConfig, call: &Call, locality: Locality) -> CounterSet {
    counters_from_cost(
        machine,
        call,
        locality,
        &estimate_cost(machine, call, locality),
    )
}

/// Derives the virtual counter set from an **already computed** cost
/// breakdown, so callers that need both (the simulated executor, on every
/// single measurement) run the cost model once instead of twice.
pub fn counters_from_cost(
    machine: &MachineConfig,
    call: &Call,
    locality: Locality,
    breakdown: &CostBreakdown,
) -> CounterSet {
    let line = 64.0;
    let bytes = breakdown.bytes_moved;
    let l1 = machine
        .cpu
        .caches
        .first()
        .map(|c| c.size_bytes)
        .unwrap_or(32 * 1024);
    let llc = machine
        .cpu
        .last_level_cache()
        .map(|c| c.size_bytes)
        .unwrap_or(l1);
    let fits_l1 = (bytes as usize) <= l1;
    let fits_llc = (bytes as usize) <= llc;
    let out = matches!(locality, Locality::OutOfCache);
    let l1_misses = if fits_l1 && !out { 0.0 } else { bytes / line };
    let llc_misses = if fits_llc && !out { 0.0 } else { bytes / line };
    let dram_bytes = if out || !fits_llc { bytes } else { 0.0 };
    CounterSet {
        ticks: breakdown.ticks,
        flops: call.flops(),
        l1_misses,
        llc_misses,
        dram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blasprofile::{atlas_like, mkl_like, openblas_like};
    use crate::CpuSpec;
    use dla_blas::{Diag, Side, Trans, Uplo};

    fn harpertown_openblas() -> MachineConfig {
        MachineConfig::new(CpuSpec::harpertown(), openblas_like(), 1)
    }

    fn square_gemm(n: usize) -> Call {
        Call::gemm(Trans::NoTrans, Trans::NoTrans, n, n, n, 1.0, 0.0)
    }

    #[test]
    fn efficiency_saturates_with_size() {
        let m = harpertown_openblas();
        let e_small = kernel_efficiency(&m, &square_gemm(8));
        let e_mid = kernel_efficiency(&m, &square_gemm(128));
        let e_big = kernel_efficiency(&m, &square_gemm(1024));
        assert!(e_small < e_mid && e_mid < e_big);
        assert!(e_big < 1.0);
        assert!(e_big > 0.6, "large gemm should approach peak, got {e_big}");
    }

    #[test]
    fn ticks_grow_with_size_and_follow_cubic_trend() {
        let m = harpertown_openblas();
        let t256 = estimate_ticks(&m, &square_gemm(256), Locality::InCache);
        let t512 = estimate_ticks(&m, &square_gemm(512), Locality::InCache);
        assert!(t512 > t256 * 5.0, "expected roughly cubic growth");
        assert!(t512 < t256 * 12.0);
    }

    #[test]
    fn in_cache_is_faster_than_out_of_cache() {
        let m = harpertown_openblas();
        let call = Call::trsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            512,
            128,
            0.37,
        );
        let ic = estimate_ticks(&m, &call, Locality::InCache);
        let oc = estimate_ticks(&m, &call, Locality::OutOfCache);
        assert!(
            oc > ic * 1.2,
            "out-of-cache {oc} should exceed in-cache {ic}"
        );
    }

    #[test]
    fn out_of_cache_gap_shrinks_for_huge_working_sets() {
        let m = harpertown_openblas();
        let small = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            64,
            64,
            1.0,
        );
        let huge = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            1600,
            1600,
            1.0,
        );
        let ratio_small = estimate_ticks(&m, &small, Locality::OutOfCache)
            / estimate_ticks(&m, &small, Locality::InCache);
        let ratio_huge = estimate_ticks(&m, &huge, Locality::OutOfCache)
            / estimate_ticks(&m, &huge, Locality::InCache);
        assert!(ratio_small > ratio_huge);
    }

    #[test]
    fn implementations_are_ranked_for_large_gemm() {
        let cpu = CpuSpec::harpertown();
        let call = square_gemm(768);
        let t_mkl = estimate_ticks(
            &MachineConfig::new(cpu.clone(), mkl_like(), 1),
            &call,
            Locality::InCache,
        );
        let t_open = estimate_ticks(
            &MachineConfig::new(cpu.clone(), openblas_like(), 1),
            &call,
            Locality::InCache,
        );
        let t_atlas = estimate_ticks(
            &MachineConfig::new(cpu, atlas_like(), 1),
            &call,
            Locality::InCache,
        );
        assert!(t_mkl < t_open);
        assert!(t_open < t_atlas);
    }

    #[test]
    fn empty_calls_cost_only_overhead() {
        let m = harpertown_openblas();
        let call = Call::gemm(Trans::NoTrans, Trans::NoTrans, 0, 128, 64, 1.0, 0.0);
        let b = estimate_cost(&m, &call, Locality::InCache);
        assert_eq!(b.compute_ticks, 0.0);
        assert_eq!(b.ticks, m.blas.call_overhead_cycles);
    }

    #[test]
    fn multithreading_helps_large_calls_and_hurts_tiny_ones() {
        let cpu = CpuSpec::sandy_bridge();
        let seq = MachineConfig::new(cpu.clone(), openblas_like(), 1);
        let par = MachineConfig::new(cpu, openblas_like(), 8);
        let big = square_gemm(1024);
        let tiny = square_gemm(16);
        assert!(
            estimate_ticks(&par, &big, Locality::InCache)
                < estimate_ticks(&seq, &big, Locality::InCache)
        );
        assert!(
            estimate_ticks(&par, &tiny, Locality::InCache)
                > estimate_ticks(&seq, &tiny, Locality::InCache)
        );
    }

    #[test]
    fn unblocked_kernels_have_low_efficiency() {
        let m = harpertown_openblas();
        let tri = Call::trtri_unb(Uplo::Lower, Diag::NonUnit, 96);
        let gem = square_gemm(96);
        assert!(kernel_efficiency(&m, &tri) < 0.3 * kernel_efficiency(&m, &gem));
    }

    #[test]
    fn counters_reflect_locality() {
        let m = harpertown_openblas();
        let call = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            64,
            64,
            1.0,
        );
        let ic = estimate_counters(&m, &call, Locality::InCache);
        let oc = estimate_counters(&m, &call, Locality::OutOfCache);
        assert_eq!(ic.dram_bytes, 0.0);
        assert!(oc.dram_bytes > 0.0);
        assert!(oc.ticks > ic.ticks);
        assert_eq!(ic.flops, call.flops());
    }

    #[test]
    fn breakdown_terms_are_consistent() {
        let m = harpertown_openblas();
        let b = estimate_cost(&m, &square_gemm(256), Locality::InCache);
        assert!(b.ticks >= b.compute_ticks.max(b.memory_ticks));
        assert!(b.efficiency > 0.0 && b.efficiency < 1.0);
        assert!(b.bytes_moved > 0.0);
    }
}
