//! Deterministic fault injection for the measurement path.
//!
//! The follow-up cache study to the source paper (arXiv:1402.5897) shows that
//! real kernel timings are noisy and state-dependent; production measurement
//! sweeps additionally suffer transient harness failures, scheduler-induced
//! latency spikes, corrupt counter reads and long "stuck-slow" phases while a
//! competing job shares the machine.  [`ChaosExecutor`] wraps any
//! [`Executor`] and injects exactly these fault classes on a deterministic,
//! seed-forked schedule, so every downstream defense (retrying sampler,
//! robust aggregation, refinement quarantine, publication validation) is
//! testable under plain `cargo test` with no wall-clock dependence.

use dla_blas::Call;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::executor::derive_stream_seed;
use crate::{ExecError, Executor, Locality, MachineConfig, Measurement};

/// Fault schedule for a [`ChaosExecutor`].
///
/// All probabilities are per executed measurement and drawn from the chaos
/// executor's own seeded stream — independent of the wrapped executor's noise
/// stream, so enabling injection never perturbs the underlying measurements.
/// Stuck-slow phases are a pure function of the execution index (no
/// randomness): executions `i` with `i % stuck_period < stuck_len` are slowed
/// by `stuck_factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the chaos decision stream ([`Executor::fork`] derives child
    /// seeds from it, like the simulated executor's noise stream).
    pub seed: u64,
    /// Probability that a measurement fails transiently.  On the fallible
    /// surface this is an [`ExecError::Transient`]; on the infallible surface
    /// the lost measurement is reported as NaN ticks.
    pub transient_probability: f64,
    /// Probability of a latency outlier (`ticks × spike_factor`).
    pub spike_probability: f64,
    /// Multiplier applied to spiked measurements.
    pub spike_factor: f64,
    /// Probability that a measurement's ticks are corrupted to a non-finite
    /// value (alternating NaN and +∞).
    pub non_finite_probability: f64,
    /// Probability that a measurement overruns the harness deadline.  On the
    /// infallible surface the measurement reports +∞ ticks (it "never came
    /// back"); on the fallible surface it is a [`ExecError::Transient`] —
    /// like a transient failure, a timed-out run delivers nothing and may
    /// succeed on retry.  The serving-layer `ChaosShard` reuses this field to
    /// inject distinguishable per-query timeouts.
    pub timeout_probability: f64,
    /// Probability that a measurement opens a **hard outage window**: this
    /// measurement and the next `outage_draws - 1` all fail (the harness is
    /// down, not merely unlucky).  Lost measurements inside the window report
    /// NaN on the infallible surface and [`ExecError::Transient`] on the
    /// fallible one, and consume no chaos draws — a down harness does not
    /// advance the fault schedule.
    pub outage_probability: f64,
    /// Length, in measurements, of each outage window (0 behaves as 1).
    pub outage_draws: u64,
    /// Period (in executions) of the stuck-slow phase pattern; 0 disables it.
    pub stuck_period: u64,
    /// Leading executions of each period that run stuck-slow.
    pub stuck_len: u64,
    /// Multiplier applied to measurements inside a stuck-slow phase.
    pub stuck_factor: f64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            transient_probability: 0.0,
            spike_probability: 0.0,
            spike_factor: 10.0,
            non_finite_probability: 0.0,
            timeout_probability: 0.0,
            outage_probability: 0.0,
            outage_draws: 4,
            stuck_period: 0,
            stuck_len: 0,
            stuck_factor: 4.0,
        }
    }
}

impl ChaosConfig {
    /// A mixed schedule at the given total per-measurement fault rate:
    /// 40 % transient failures, 30 % latency spikes (×10) and 30 % non-finite
    /// ticks.  This is the composition the acceptance experiments use
    /// (e.g. `mixed(seed, 0.2)` for a 20 % fault rate).
    pub fn mixed(seed: u64, fault_rate: f64) -> ChaosConfig {
        let rate = fault_rate.clamp(0.0, 1.0);
        ChaosConfig {
            seed,
            transient_probability: 0.4 * rate,
            spike_probability: 0.3 * rate,
            non_finite_probability: 0.3 * rate,
            ..ChaosConfig::default()
        }
    }

    /// A mixed **serving-layer** schedule at the given total per-call fault
    /// rate: 30 % transient failures, 30 % harness timeouts, 20 % ×8 latency
    /// spikes and 20 % non-finite corruption.  This is the composition the
    /// fleet chaos suite and `examples/fleet_degradation.rs` inject through
    /// `ChaosShard`.
    pub fn serving(seed: u64, fault_rate: f64) -> ChaosConfig {
        let rate = fault_rate.clamp(0.0, 1.0);
        ChaosConfig {
            seed,
            transient_probability: 0.3 * rate,
            timeout_probability: 0.3 * rate,
            spike_probability: 0.2 * rate,
            spike_factor: 8.0,
            non_finite_probability: 0.2 * rate,
            ..ChaosConfig::default()
        }
    }

    /// Total per-measurement probability that *some* randomized fault fires.
    pub fn fault_rate(&self) -> f64 {
        self.transient_probability
            + self.spike_probability
            + self.non_finite_probability
            + self.timeout_probability
            + self.outage_probability
    }
}

/// Counts of every fault injected so far, for assertions and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Transient failures injected.
    pub transient: u64,
    /// Latency spikes injected.
    pub spikes: u64,
    /// Measurements corrupted to NaN/∞.
    pub non_finite: u64,
    /// Measurements that overran the harness deadline.
    pub timeouts: u64,
    /// Hard outage windows opened.
    pub outages: u64,
    /// Measurements lost inside outage windows (the window-opening
    /// measurement included).
    pub outage_lost: u64,
    /// Measurements slowed by a stuck-slow phase.
    pub stuck: u64,
}

impl FaultCounts {
    /// Total randomized faults injected (stuck-slow phases excluded — they
    /// perturb measurements but do not destroy them).  Outages count one per
    /// lost measurement, not one per window.
    pub fn total(&self) -> u64 {
        self.transient + self.spikes + self.non_finite + self.timeouts + self.outage_lost
    }
}

/// What the chaos schedule decided for one measurement.
enum Fault {
    None,
    Transient,
    Spike,
    NonFinite,
    /// The measurement overran the harness deadline (+∞ ticks / no delivery).
    Timeout,
    /// The measurement fell into a hard outage window of the given total
    /// length (every measurement in the window reports this kind).
    Outage {
        #[allow(dead_code)] // carried for symmetry with the config knob
        duration_draws: u64,
    },
}

impl Fault {
    /// Whether the fallible surface delivers nothing for this fault.
    /// Transient failures, timeouts and outage losses all mean "no
    /// measurement came back; retrying may succeed" — exactly
    /// [`ExecError::Transient`]'s contract.
    fn undelivered(&self) -> bool {
        matches!(
            self,
            Fault::Transient | Fault::Timeout | Fault::Outage { .. }
        )
    }
}

/// An [`Executor`] wrapper that injects faults on a deterministic schedule.
///
/// The wrapped executor always runs first (its noise stream advances exactly
/// as without injection), then one chaos decision is drawn per delivered
/// measurement.  The infallible [`Executor::execute`]/
/// [`Executor::execute_ticks`] surface cannot report a transient failure, so
/// there the lost measurement appears as NaN ticks — which the robust
/// sampling layer must catch, exactly like a corrupt counter read.  The
/// fallible `try_*` surface reports it as [`ExecError::Transient`] and
/// delivers nothing.
#[derive(Debug, Clone)]
pub struct ChaosExecutor<E> {
    inner: E,
    config: ChaosConfig,
    rng: SmallRng,
    executions: u64,
    /// Measurements left in the currently open outage window (0 = no window).
    outage_left: u64,
    counts: FaultCounts,
}

impl<E: Executor> ChaosExecutor<E> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: E, config: ChaosConfig) -> ChaosExecutor<E> {
        ChaosExecutor {
            inner,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            executions: 0,
            outage_left: 0,
            counts: FaultCounts::default(),
        }
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps into the inner executor.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// The fault schedule.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Mutable access to the fault schedule, e.g. to lift or change the fault
    /// rates mid-scenario (a recovered machine).  The random stream is not
    /// reseeded: draws continue from wherever the previous schedule left off,
    /// so a toggle stays deterministic for a fixed seed and call sequence.
    pub fn config_mut(&mut self) -> &mut ChaosConfig {
        &mut self.config
    }

    /// Faults injected so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.counts
    }

    /// Number of measurements processed so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Applies the schedule to one measurement's ticks.  Consumes exactly one
    /// random draw whenever any randomized fault has non-zero probability, so
    /// `execute` and `execute_ticks` sequences replay identically.
    fn transform(&mut self, ticks: f64) -> (f64, Fault) {
        self.executions += 1;
        let mut t = ticks;
        let c = self.config;
        if c.stuck_period > 0 && (self.executions - 1) % c.stuck_period < c.stuck_len {
            t *= c.stuck_factor;
            self.counts.stuck += 1;
        }
        // An open outage window swallows the measurement before any draw is
        // consumed: a down harness does not advance the fault schedule.
        if self.outage_left > 0 {
            self.outage_left -= 1;
            self.counts.outage_lost += 1;
            let window = self.config.outage_draws.max(1);
            return (
                f64::NAN,
                Fault::Outage {
                    duration_draws: window,
                },
            );
        }
        let p_transient = c.transient_probability.max(0.0);
        let p_spike = c.spike_probability.max(0.0);
        let p_non_finite = c.non_finite_probability.max(0.0);
        let p_timeout = c.timeout_probability.max(0.0);
        let p_outage = c.outage_probability.max(0.0);
        if p_transient + p_spike + p_non_finite + p_timeout + p_outage <= 0.0 {
            return (t, Fault::None);
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u < p_transient {
            self.counts.transient += 1;
            (f64::NAN, Fault::Transient)
        } else if u < p_transient + p_spike {
            self.counts.spikes += 1;
            (t * c.spike_factor, Fault::Spike)
        } else if u < p_transient + p_spike + p_non_finite {
            self.counts.non_finite += 1;
            // Alternate the two non-finite corruptions so both are exercised.
            let bad = if self.counts.non_finite % 2 == 1 {
                f64::NAN
            } else {
                f64::INFINITY
            };
            (bad, Fault::NonFinite)
        } else if u < p_transient + p_spike + p_non_finite + p_timeout {
            self.counts.timeouts += 1;
            // Overran the harness deadline: the run "never came back".
            (f64::INFINITY, Fault::Timeout)
        } else if u < p_transient + p_spike + p_non_finite + p_timeout + p_outage {
            // Open a hard outage window; this measurement is its first loss.
            let window = c.outage_draws.max(1);
            self.counts.outages += 1;
            self.counts.outage_lost += 1;
            self.outage_left = window - 1;
            (
                f64::NAN,
                Fault::Outage {
                    duration_draws: window,
                },
            )
        } else {
            (t, Fault::None)
        }
    }
}

impl<E: Executor> Executor for ChaosExecutor<E> {
    fn machine(&self) -> &MachineConfig {
        self.inner.machine()
    }

    fn execute(&mut self, call: &Call, locality: Locality) -> Measurement {
        let mut m = self.inner.execute(call, locality);
        let (ticks, _) = self.transform(m.ticks);
        m.ticks = ticks;
        m.counters.ticks = ticks;
        m
    }

    fn try_execute(&mut self, call: &Call, locality: Locality) -> Result<Measurement, ExecError> {
        let mut m = self.inner.execute(call, locality);
        let (ticks, fault) = self.transform(m.ticks);
        if fault.undelivered() {
            return Err(ExecError::Transient {
                execution: self.executions,
            });
        }
        m.ticks = ticks;
        m.counters.ticks = ticks;
        Ok(m)
    }

    fn execute_ticks(&mut self, call: &Call, locality: Locality, count: usize, out: &mut Vec<f64>) {
        let start = out.len();
        self.inner.execute_ticks(call, locality, count, out);
        for t in &mut out[start..] {
            let (ticks, _) = self.transform(*t);
            *t = ticks;
        }
    }

    /// Batched fallible repetitions.  On a transient fault, `out` is restored
    /// to its pre-call length and the remaining repetitions of the batch
    /// consume no chaos draws — a failed batch aborts at the fault, exactly
    /// like a harness run that dies partway through.
    fn try_execute_ticks(
        &mut self,
        call: &Call,
        locality: Locality,
        count: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), ExecError> {
        let start = out.len();
        self.inner.execute_ticks(call, locality, count, out);
        for i in start..out.len() {
            let (ticks, fault) = self.transform(out[i]);
            if fault.undelivered() {
                out.truncate(start);
                return Err(ExecError::Transient {
                    execution: self.executions,
                });
            }
            out[i] = ticks;
        }
        Ok(())
    }

    fn fork(&self, stream: u64) -> ChaosExecutor<E> {
        let mut config = self.config;
        config.seed = derive_stream_seed(self.config.seed, stream);
        ChaosExecutor::new(self.inner.fork(stream), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blasprofile::openblas_like;
    use crate::{CpuSpec, SimExecutor};
    use dla_blas::Trans;

    fn machine() -> MachineConfig {
        MachineConfig::new(CpuSpec::harpertown(), openblas_like(), 1)
    }

    fn call() -> Call {
        Call::gemm(Trans::NoTrans, Trans::NoTrans, 100, 100, 100, 1.0, 0.0)
    }

    #[test]
    fn zero_config_is_bit_identical_passthrough() {
        let mut raw = SimExecutor::new(machine(), 42);
        let mut chaotic =
            ChaosExecutor::new(SimExecutor::new(machine(), 42), ChaosConfig::default());
        let mut a = Vec::new();
        let mut b = Vec::new();
        raw.execute_ticks(&call(), Locality::InCache, 8, &mut a);
        chaotic.execute_ticks(&call(), Locality::InCache, 8, &mut b);
        assert_eq!(a, b);
        assert_eq!(
            raw.execute(&call(), Locality::OutOfCache).ticks,
            chaotic.execute(&call(), Locality::OutOfCache).ticks
        );
        assert_eq!(chaotic.fault_counts(), FaultCounts::default());
    }

    #[test]
    fn same_seed_replays_the_same_faults() {
        let config = ChaosConfig::mixed(7, 0.5);
        let mut a = ChaosExecutor::new(SimExecutor::new(machine(), 1), config);
        let mut b = ChaosExecutor::new(SimExecutor::new(machine(), 1), config);
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        a.execute_ticks(&call(), Locality::InCache, 64, &mut ta);
        b.execute_ticks(&call(), Locality::InCache, 64, &mut tb);
        assert_eq!(ta.len(), tb.len());
        for (x, y) in ta.iter().zip(&tb) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
        assert_eq!(a.fault_counts(), b.fault_counts());
        assert!(a.fault_counts().total() > 0);
    }

    #[test]
    fn execute_and_execute_ticks_consume_the_stream_identically() {
        let config = ChaosConfig::mixed(3, 0.4);
        let mut batched = ChaosExecutor::new(SimExecutor::new(machine(), 5), config);
        let mut looped = ChaosExecutor::new(SimExecutor::new(machine(), 5), config);
        let mut a = Vec::new();
        batched.execute_ticks(&call(), Locality::InCache, 32, &mut a);
        let b: Vec<f64> = (0..32)
            .map(|_| looped.execute(&call(), Locality::InCache).ticks)
            .collect();
        for (x, y) in a.iter().zip(&b) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let parent =
            ChaosExecutor::new(SimExecutor::new(machine(), 9), ChaosConfig::mixed(11, 0.3));
        let mut a = parent.fork(2);
        let mut b = parent.fork(2);
        let mut c = parent.fork(5);
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        let mut tc = Vec::new();
        a.execute_ticks(&call(), Locality::InCache, 64, &mut ta);
        b.execute_ticks(&call(), Locality::InCache, 64, &mut tb);
        c.execute_ticks(&call(), Locality::InCache, 64, &mut tc);
        assert_eq!(a.fault_counts(), b.fault_counts());
        assert_ne!(
            a.fault_counts(),
            c.fault_counts(),
            "different streams should draw different fault schedules"
        );
    }

    #[test]
    fn fault_rates_match_the_schedule_roughly() {
        let config = ChaosConfig::mixed(123, 0.2);
        let mut ex = ChaosExecutor::new(SimExecutor::new(machine(), 2), config);
        let mut ticks = Vec::new();
        ex.execute_ticks(&call(), Locality::InCache, 4000, &mut ticks);
        let counts = ex.fault_counts();
        let observed = counts.total() as f64 / 4000.0;
        assert!(
            (observed - 0.2).abs() < 0.03,
            "observed fault rate {observed}, want ~0.2 ({counts:?})"
        );
        assert!(counts.transient > 0 && counts.spikes > 0 && counts.non_finite > 0);
        let non_finite_ticks = ticks.iter().filter(|t| !t.is_finite()).count() as u64;
        // Transient faults surface as NaN on the infallible surface.
        assert_eq!(non_finite_ticks, counts.transient + counts.non_finite);
    }

    #[test]
    fn try_execute_ticks_reports_transient_and_restores_out() {
        let config = ChaosConfig {
            transient_probability: 0.5,
            ..ChaosConfig::mixed(77, 0.0)
        };
        let mut ex = ChaosExecutor::new(SimExecutor::new(machine(), 4), config);
        let mut out = vec![1.0, 2.0];
        let mut failures = 0;
        for _ in 0..10 {
            let start = out.len();
            match ex.try_execute_ticks(&call(), Locality::InCache, 8, &mut out) {
                Ok(()) => assert_eq!(out.len(), start + 8),
                Err(ExecError::Transient { .. }) => {
                    failures += 1;
                    assert_eq!(out.len(), start, "failed batch must deliver nothing");
                }
            }
        }
        assert!(failures > 0, "p=0.5 over 80 reps must fail at least once");
        assert_eq!(&out[..2], &[1.0, 2.0]);
    }

    #[test]
    fn try_execute_reports_transient() {
        let config = ChaosConfig {
            transient_probability: 1.0,
            ..ChaosConfig::default()
        };
        let mut ex = ChaosExecutor::new(SimExecutor::new(machine(), 6), config);
        match ex.try_execute(&call(), Locality::InCache) {
            Err(ExecError::Transient { execution }) => assert_eq!(execution, 1),
            other => panic!("expected transient failure, got {other:?}"),
        }
        // The infallible surface reports the same fault as NaN ticks.
        assert!(ex.execute(&call(), Locality::InCache).ticks.is_nan());
    }

    #[test]
    fn stuck_phases_follow_the_execution_index() {
        let config = ChaosConfig {
            stuck_period: 10,
            stuck_len: 3,
            stuck_factor: 4.0,
            ..ChaosConfig::default()
        };
        let mut stuck = ChaosExecutor::new(SimExecutor::noiseless(machine()), config);
        let mut clean = SimExecutor::noiseless(machine());
        let mut got = Vec::new();
        let mut base = Vec::new();
        stuck.execute_ticks(&call(), Locality::InCache, 20, &mut got);
        clean.execute_ticks(&call(), Locality::InCache, 20, &mut base);
        for (i, (g, b)) in got.iter().zip(&base).enumerate() {
            if i % 10 < 3 {
                assert!((g / b - 4.0).abs() < 1e-9, "execution {i} should be stuck");
            } else {
                assert_eq!(g, b, "execution {i} should be clean");
            }
        }
        assert_eq!(stuck.fault_counts().stuck, 6);
    }

    #[test]
    fn chaos_executor_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ChaosExecutor<SimExecutor>>();
    }

    #[test]
    fn timeouts_surface_as_infinity_and_transient_error() {
        let config = ChaosConfig {
            timeout_probability: 1.0,
            ..ChaosConfig::default()
        };
        let mut ex = ChaosExecutor::new(SimExecutor::new(machine(), 8), config);
        // Infallible surface: the run "never came back" — +∞ ticks.
        assert_eq!(ex.execute(&call(), Locality::InCache).ticks, f64::INFINITY);
        // Fallible surface: delivered nothing, retry may succeed.
        assert!(matches!(
            ex.try_execute(&call(), Locality::InCache),
            Err(ExecError::Transient { .. })
        ));
        assert_eq!(ex.fault_counts().timeouts, 2);
        assert_eq!(ex.fault_counts().total(), 2);
    }

    #[test]
    fn outage_windows_lose_exactly_their_draws_then_recover() {
        // Guarantee the very first draw opens the window, and no other
        // randomized fault competes with it.
        let config = ChaosConfig {
            outage_probability: 1.0,
            outage_draws: 5,
            ..ChaosConfig::default()
        };
        let mut ex = ChaosExecutor::new(SimExecutor::noiseless(machine()), config);
        let mut ticks = Vec::new();
        // First execution opens a 5-measurement window; measurements 1–5 are
        // lost.  Execution 6 draws again (probability 1) and opens the next
        // window immediately, so with p = 1 everything is lost — assert the
        // window accounting instead.
        ex.execute_ticks(&call(), Locality::InCache, 12, &mut ticks);
        assert!(ticks.iter().all(|t| t.is_nan()));
        let counts = ex.fault_counts();
        assert_eq!(counts.outage_lost, 12);
        // Windows of 5: executions 1 and 6 and 11 opened one each.
        assert_eq!(counts.outages, 3);

        // A finite-probability window closes and lets measurements through.
        let config = ChaosConfig {
            seed: 3,
            outage_probability: 0.05,
            outage_draws: 4,
            ..ChaosConfig::default()
        };
        let mut ex = ChaosExecutor::new(SimExecutor::noiseless(machine()), config);
        let mut ticks = Vec::new();
        ex.execute_ticks(&call(), Locality::InCache, 400, &mut ticks);
        let counts = ex.fault_counts();
        assert!(
            counts.outages > 0,
            "p=0.05 over 400 draws must open windows"
        );
        assert!(
            ticks.iter().any(|t| t.is_finite()),
            "the harness must recover between windows"
        );
        let lost = ticks.iter().filter(|t| t.is_nan()).count() as u64;
        assert_eq!(lost, counts.outage_lost);
    }

    #[test]
    fn outage_windows_do_not_advance_the_fault_schedule() {
        // Two executors with the same seed: one whose first 6 measurements
        // fall into an outage window, one without.  After the window, both
        // must draw the identical fault schedule (the window consumed only
        // its single opening draw).
        let mixed = ChaosConfig::mixed(21, 0.4);
        let windowed = ChaosConfig {
            seed: 21,
            outage_probability: 1.0,
            outage_draws: 6,
            ..ChaosConfig::default()
        };
        let mut a = ChaosExecutor::new(SimExecutor::noiseless(machine()), windowed);
        let mut ta = Vec::new();
        // Execution 1 opens the window (consuming one draw), 2–6 consume none.
        a.execute_ticks(&call(), Locality::InCache, 6, &mut ta);
        assert_eq!(a.fault_counts().outage_lost, 6);

        let mut b = ChaosExecutor::new(SimExecutor::noiseless(machine()), mixed);
        let mut tb = Vec::new();
        b.execute_ticks(&call(), Locality::InCache, 1, &mut tb); // consume draw 1

        // From here on, both streams must decide identically — switch the
        // windowed executor onto the mixed schedule without reseeding.
        *a.config_mut() = ChaosConfig { seed: 21, ..mixed };
        let mut rest_a = Vec::new();
        let mut rest_b = Vec::new();
        a.execute_ticks(&call(), Locality::InCache, 64, &mut rest_a);
        b.execute_ticks(&call(), Locality::InCache, 64, &mut rest_b);
        for (x, y) in rest_a.iter().zip(&rest_b) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
    }

    #[test]
    fn serving_schedule_composes_the_rate() {
        let config = ChaosConfig::serving(5, 0.2);
        assert!((config.fault_rate() - 0.2).abs() < 1e-12);
        assert!(config.timeout_probability > 0.0);
        assert_eq!(config.spike_factor, 8.0);
        let mut ex = ChaosExecutor::new(SimExecutor::new(machine(), 2), config);
        let mut ticks = Vec::new();
        ex.execute_ticks(&call(), Locality::InCache, 4000, &mut ticks);
        let counts = ex.fault_counts();
        let observed = counts.total() as f64 / 4000.0;
        assert!(
            (observed - 0.2).abs() < 0.03,
            "observed fault rate {observed}, want ~0.2 ({counts:?})"
        );
        assert!(counts.timeouts > 0, "serving schedule must inject timeouts");
    }
}
