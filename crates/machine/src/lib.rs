//! # dla-machine
//!
//! The measurement substrate of the `dlaperf` stack.
//!
//! The original paper measures BLAS routines on real Intel Harpertown and
//! Sandy Bridge machines through RDTSC/PAPI and three proprietary BLAS
//! implementations (OpenBLAS, MKL, ATLAS).  None of that hardware or software
//! is available to a reproduction that must run hermetically, so this crate
//! provides the documented substitution (see `DESIGN.md`):
//!
//! * [`CpuSpec`] / [`CacheLevel`] — analytical machine descriptions with
//!   presets for a Harpertown-class and a Sandy Bridge-class CPU.
//! * [`BlasProfile`] — per-implementation performance signatures (peak kernel
//!   efficiency, saturation dimensions, blocking kinks, call overheads, noise
//!   levels, library-initialisation cost) with `OpenBLAS`-, `MKL`- and
//!   `ATLAS`-like presets.
//! * [`cost`] — the deterministic roofline-style cost model mapping a
//!   [`dla_blas::Call`] plus a memory-locality scenario to `ticks`.
//! * [`SimExecutor`] — the stochastic executor: deterministic cost model plus
//!   multiplicative measurement noise, outliers and first-call overhead; this
//!   is what the Sampler "runs" calls on.
//! * [`NativeExecutor`] — the real-hardware path: executes the pure-Rust
//!   kernels of `dla-blas` and measures wall-clock time, for users who want to
//!   model the machine the reproduction itself runs on.
//! * [`ChaosExecutor`] — deterministic fault injection wrapping any executor
//!   (transient failures, latency spikes, NaN/∞ ticks, stuck-slow phases) for
//!   testing the fault-tolerant measurement-to-serving path.
//! * [`counters`] — virtual hardware counters (the PAPI substitute).
//! * [`presets`] — ready-made machine configurations used by the experiments.
//!
//! The simulator is *not* a cycle-accurate model; it is calibrated so that the
//! qualitative phenomena the paper's methodology relies on are present:
//! efficiency saturating with problem size, piecewise-polynomial behaviour
//! with kinks at cache-capacity boundaries, flag-dependent performance,
//! in-cache vs out-of-cache gaps, ~4–8 % measurement noise with outliers,
//! slow first invocations, and implementation- and architecture-dependent
//! rankings of the blocked algorithm variants.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

mod blasprofile;
mod chaos;
mod config;
mod cpu;
mod executor;
mod native;

pub mod cost;
pub mod counters;
pub mod presets;

pub use blasprofile::{BlasProfile, RoutineParams};
pub use chaos::{ChaosConfig, ChaosExecutor, FaultCounts};
pub use config::{Locality, MachineConfig, Measurement};
pub use cpu::{CacheLevel, CpuSpec};
pub use executor::{derive_stream_seed, ExecError, Executor, SimExecutor};
pub use native::NativeExecutor;
