//! CPU and memory-hierarchy descriptions.

/// One level of the cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevel {
    /// Human-readable name ("L1", "L2", ...).
    pub name: String,
    /// Capacity in bytes (per core for private caches, total for shared ones).
    pub size_bytes: usize,
    /// Sustained bandwidth in bytes per cycle per core.
    pub bandwidth_bytes_per_cycle: f64,
    /// Access latency in cycles.
    pub latency_cycles: f64,
}

impl CacheLevel {
    /// Creates a cache level description.
    pub fn new(name: &str, size_bytes: usize, bandwidth: f64, latency: f64) -> CacheLevel {
        CacheLevel {
            name: name.to_string(),
            size_bytes,
            bandwidth_bytes_per_cycle: bandwidth,
            latency_cycles: latency,
        }
    }
}

/// An analytical description of a CPU: clock, SIMD width, core count and
/// memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing-style name of the CPU.
    pub name: String,
    /// Clock frequency in GHz (used only to convert native wall-clock
    /// measurements into ticks).
    pub freq_ghz: f64,
    /// Peak double-precision floating-point instructions per cycle per core
    /// (`fips` in the paper's efficiency formula).
    pub flops_per_cycle: f64,
    /// Number of physical cores.
    pub cores: usize,
    /// Cache hierarchy, ordered from the fastest/smallest level outward.
    pub caches: Vec<CacheLevel>,
    /// Main-memory bandwidth in bytes per cycle (shared across cores).
    pub dram_bandwidth_bytes_per_cycle: f64,
    /// Main-memory access latency in cycles.
    pub dram_latency_cycles: f64,
}

impl CpuSpec {
    /// An Intel Harpertown (Xeon E5450) class core: 3.0 GHz, SSE2 (4 flops per
    /// cycle in double precision), 32 KiB L1 and a large 6 MiB L2, no L3.
    pub fn harpertown() -> CpuSpec {
        CpuSpec {
            name: "Harpertown E5450".to_string(),
            freq_ghz: 3.0,
            flops_per_cycle: 4.0,
            cores: 4,
            caches: vec![
                CacheLevel::new("L1", 32 * 1024, 16.0, 4.0),
                CacheLevel::new("L2", 6 * 1024 * 1024, 8.0, 15.0),
            ],
            dram_bandwidth_bytes_per_cycle: 2.0,
            dram_latency_cycles: 220.0,
        }
    }

    /// An Intel Sandy Bridge-EP (Xeon E5-2670) class core: 2.6 GHz, AVX
    /// (8 flops per cycle in double precision), three cache levels, 8 cores.
    pub fn sandy_bridge() -> CpuSpec {
        CpuSpec {
            name: "Sandy Bridge-EP E5-2670".to_string(),
            freq_ghz: 2.6,
            flops_per_cycle: 8.0,
            cores: 8,
            caches: vec![
                CacheLevel::new("L1", 32 * 1024, 32.0, 4.0),
                CacheLevel::new("L2", 256 * 1024, 16.0, 12.0),
                CacheLevel::new("L3", 20 * 1024 * 1024, 8.0, 30.0),
            ],
            dram_bandwidth_bytes_per_cycle: 4.0,
            dram_latency_cycles: 200.0,
        }
    }

    /// The smallest cache level that can hold `bytes`, if any.
    pub fn smallest_fitting_cache(&self, bytes: usize) -> Option<&CacheLevel> {
        self.caches.iter().find(|c| c.size_bytes >= bytes)
    }

    /// The last-level cache, if the CPU has any cache at all.
    pub fn last_level_cache(&self) -> Option<&CacheLevel> {
        self.caches.last()
    }

    /// Peak double-precision flops per cycle across `threads` cores (capped at
    /// the physical core count).
    pub fn peak_flops_per_cycle(&self, threads: usize) -> f64 {
        self.flops_per_cycle * threads.clamp(1, self.cores) as f64
    }

    /// Converts a wall-clock duration in seconds to clock ticks.
    pub fn seconds_to_ticks(&self, seconds: f64) -> f64 {
        seconds * self.freq_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sensible_values() {
        let h = CpuSpec::harpertown();
        assert_eq!(h.flops_per_cycle, 4.0);
        assert_eq!(h.caches.len(), 2);
        assert!(h.caches[0].size_bytes < h.caches[1].size_bytes);
        let sb = CpuSpec::sandy_bridge();
        assert_eq!(sb.flops_per_cycle, 8.0);
        assert_eq!(sb.cores, 8);
        assert_eq!(sb.caches.len(), 3);
    }

    #[test]
    fn cache_fitting() {
        let h = CpuSpec::harpertown();
        assert_eq!(h.smallest_fitting_cache(16 * 1024).unwrap().name, "L1");
        assert_eq!(h.smallest_fitting_cache(1024 * 1024).unwrap().name, "L2");
        assert!(h.smallest_fitting_cache(100 * 1024 * 1024).is_none());
        assert_eq!(h.last_level_cache().unwrap().name, "L2");
    }

    #[test]
    fn peak_flops_scaling_capped_at_cores() {
        let h = CpuSpec::harpertown();
        assert_eq!(h.peak_flops_per_cycle(1), 4.0);
        assert_eq!(h.peak_flops_per_cycle(2), 8.0);
        assert_eq!(h.peak_flops_per_cycle(100), 16.0);
        assert_eq!(h.peak_flops_per_cycle(0), 4.0);
    }

    #[test]
    fn seconds_to_ticks_uses_frequency() {
        let h = CpuSpec::harpertown();
        assert!((h.seconds_to_ticks(1e-9) - 3.0).abs() < 1e-12);
        let sb = CpuSpec::sandy_bridge();
        assert!((sb.seconds_to_ticks(2.0) - 5.2e9).abs() < 1.0);
    }
}
