//! Ready-made machine configurations used throughout the experiments.
//!
//! Each preset corresponds to an environment the paper evaluates on.  The
//! `EXPERIMENTS.md` file records which figure uses which preset.

use crate::blasprofile::{
    atlas_like, mkl_like, openblas_like, openblas_like_sandy_bridge,
    openblas_like_sandy_bridge_threaded,
};
use crate::{CpuSpec, MachineConfig};

/// One core of the Harpertown machine with the OpenBLAS-like implementation —
/// the environment of the paper's Sections I–III and Figure IV.1/IV.2.
pub fn harpertown_openblas() -> MachineConfig {
    MachineConfig::new(CpuSpec::harpertown(), openblas_like(), 1)
}

/// One core of the Harpertown machine with the MKL-like implementation.
pub fn harpertown_mkl() -> MachineConfig {
    MachineConfig::new(CpuSpec::harpertown(), mkl_like(), 1)
}

/// One core of the Harpertown machine with the ATLAS-like implementation.
pub fn harpertown_atlas() -> MachineConfig {
    MachineConfig::new(CpuSpec::harpertown(), atlas_like(), 1)
}

/// All three implementations on Harpertown, in the order the paper plots them.
pub fn harpertown_all_implementations() -> Vec<MachineConfig> {
    vec![harpertown_openblas(), harpertown_mkl(), harpertown_atlas()]
}

/// One core of the Sandy Bridge machine with the OpenBLAS-like implementation
/// — the environment of Figure IV.3.
pub fn sandy_bridge_openblas() -> MachineConfig {
    MachineConfig::new(CpuSpec::sandy_bridge(), openblas_like_sandy_bridge(), 1)
}

/// All 8 cores of the Sandy Bridge machine with the multithreaded
/// OpenBLAS-like implementation — the environment of Figure IV.4.
pub fn sandy_bridge_openblas_threaded() -> MachineConfig {
    MachineConfig::new(
        CpuSpec::sandy_bridge(),
        openblas_like_sandy_bridge_threaded(),
        8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_thread_counts() {
        assert_eq!(harpertown_openblas().effective_threads(), 1);
        assert_eq!(sandy_bridge_openblas().effective_threads(), 1);
        assert_eq!(sandy_bridge_openblas_threaded().effective_threads(), 8);
    }

    #[test]
    fn all_implementations_are_distinct() {
        let all = harpertown_all_implementations();
        assert_eq!(all.len(), 3);
        let names: Vec<&str> = all.iter().map(|m| m.blas.name.as_str()).collect();
        assert!(names.contains(&"openblas-like"));
        assert!(names.contains(&"mkl-like"));
        assert!(names.contains(&"atlas-like"));
    }

    #[test]
    fn ids_are_unique() {
        let ids = [
            harpertown_openblas().id(),
            harpertown_mkl().id(),
            harpertown_atlas().id(),
            sandy_bridge_openblas().id(),
            sandy_bridge_openblas_threaded().id(),
        ];
        let mut dedup = ids.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
