//! Executors: the objects the Sampler hands routine calls to.

use dla_blas::Call;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cost::{counters_from_cost, estimate_cost};
use crate::{Locality, MachineConfig, Measurement};

/// Why an execution attempt produced no usable measurement.
///
/// Real measurement harnesses fail transiently — a competing process steals
/// the machine, a counter read glitches, the library call is interrupted.
/// The fallible [`Executor::try_execute`]/[`Executor::try_execute_ticks`]
/// surface reports these as structured errors so callers can retry instead of
/// ingesting garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The call failed transiently; retrying the same call may succeed.
    Transient {
        /// Executor-local 1-based index of the execution that failed.
        execution: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Transient { execution } => {
                write!(f, "transient execution failure (execution #{execution})")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Something that can "run" a routine call and report a measurement.
///
/// Two implementations exist: [`SimExecutor`] (the simulated machine) and
/// [`crate::NativeExecutor`] (wall-clock timing of the pure-Rust kernels).
///
/// Executors are `Send` so that model construction can fan out across worker
/// threads, each owning its own executor obtained via [`Executor::fork`].
pub trait Executor: Send {
    /// The machine configuration this executor represents.
    fn machine(&self) -> &MachineConfig;

    /// Executes `call` under the given memory-locality scenario and reports
    /// the measurement.  Successive invocations of the same call may return
    /// different values (measurement noise).
    fn execute(&mut self, call: &Call, locality: Locality) -> Measurement;

    /// Executes `call` `count` times, appending only the tick measurements to
    /// `out` — the Sampler's repetition loop.
    ///
    /// The default implementation loops [`Executor::execute`]; implementations
    /// whose per-call cost is dominated by deterministic state (the simulated
    /// machine re-deriving the identical cost breakdown per repetition) can
    /// override it, **provided** the observable measurements stay identical to
    /// the looped default — including any internal noise-stream consumption,
    /// so that a mixed sequence of `execute` and `execute_ticks` calls
    /// reproduces bit for bit.
    fn execute_ticks(&mut self, call: &Call, locality: Locality, count: usize, out: &mut Vec<f64>) {
        for _ in 0..count {
            out.push(self.execute(call, locality).ticks);
        }
    }

    /// Fallible variant of [`Executor::execute`].
    ///
    /// The default implementation never fails (the simulated and native
    /// executors always deliver a measurement); wrappers that model flaky
    /// harnesses — [`crate::ChaosExecutor`] — override it to report
    /// [`ExecError::Transient`] instead of a measurement.
    fn try_execute(&mut self, call: &Call, locality: Locality) -> Result<Measurement, ExecError> {
        Ok(self.execute(call, locality))
    }

    /// Fallible variant of [`Executor::execute_ticks`].
    ///
    /// On error, `out` is left exactly as it was before the call (no partial
    /// batch is delivered), so callers can retry without cleanup.
    fn try_execute_ticks(
        &mut self,
        call: &Call,
        locality: Locality,
        count: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), ExecError> {
        self.execute_ticks(call, locality, count, out);
        Ok(())
    }

    /// Creates an independent executor for the given worker stream.
    ///
    /// Forks carry the same machine configuration but fresh library state.
    /// For a fixed parent, the fork is a deterministic function of `stream`
    /// alone — two forks with the same stream id behave identically, which is
    /// what makes parallel model construction reproduce the serial build bit
    /// for bit.  [`SimExecutor`] derives an independent child noise stream;
    /// [`crate::NativeExecutor`] forks by clone (wall-clock timing carries no
    /// executor-owned randomness).
    fn fork(&self, stream: u64) -> Self
    where
        Self: Sized;
}

/// Mixes a base seed and a stream id into an independent child seed
/// (splitmix64-style finalizer, so even adjacent streams are uncorrelated).
///
/// This is the derivation every seed-forked subsystem shares — executor
/// noise streams, chaos fault schedules, and the fleet serving tier's
/// per-query retry/backoff streams — so "same seed, same stream id" always
/// means "same decisions", independent of scheduling or worker counts.
pub fn derive_stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The simulated-machine executor.
///
/// Wraps the deterministic cost model with the stochastic phenomena the paper
/// discusses in Section II-B: multiplicative measurement noise of a few
/// percent, occasional outliers, and a large one-off penalty for the first
/// call into the library (BLAS initialisation).
#[derive(Debug, Clone)]
pub struct SimExecutor {
    machine: MachineConfig,
    seed: u64,
    rng: SmallRng,
    /// Bitmask of routines that have paid the library-initialisation penalty
    /// (one bit per [`Routine`] discriminant — cheaper than a hash set on the
    /// per-measurement hot path).
    initialised: u32,
    executions: u64,
}

impl SimExecutor {
    /// Creates a simulated executor with a deterministic noise stream.
    pub fn new(machine: MachineConfig, seed: u64) -> SimExecutor {
        SimExecutor {
            machine,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            initialised: 0,
            executions: 0,
        }
    }

    /// Creates an executor whose measurements carry no noise, no outliers and
    /// no initialisation overhead — useful for tests and for probing the
    /// deterministic cost surface.
    pub fn noiseless(machine: MachineConfig) -> SimExecutor {
        let mut machine = machine;
        machine.blas.noise_sigma = 0.0;
        machine.blas.outlier_probability = 0.0;
        machine.blas.init_overhead_factor = 1.0;
        SimExecutor::new(machine, 0)
    }

    /// Number of calls executed so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Resets the library-initialisation state, so the next call of every
    /// routine pays the first-call penalty again (mirrors re-loading the BLAS
    /// library in a fresh process).
    pub fn reset_library_state(&mut self) {
        self.initialised = 0;
    }

    fn noise_factor(&mut self) -> f64 {
        let sigma = self.machine.blas.noise_sigma;
        let mut factor = 1.0;
        if sigma > 0.0 {
            // Sum of 4 uniforms approximates a Gaussian well enough for a
            // noise model; clamp to avoid negative times.
            let mut g = 0.0;
            for _ in 0..4 {
                g += self.rng.gen_range(-1.0f64..1.0);
            }
            g *= 0.5; // roughly unit variance
            factor *= (1.0 + sigma * g).max(0.2);
        }
        let p_out = self.machine.blas.outlier_probability;
        if p_out > 0.0 && self.rng.gen_bool(p_out.clamp(0.0, 1.0)) {
            factor *= self.machine.blas.outlier_factor;
        }
        factor
    }
}

impl Executor for SimExecutor {
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn execute(&mut self, call: &Call, locality: Locality) -> Measurement {
        self.executions += 1;
        let breakdown = estimate_cost(&self.machine, call, locality);
        let mut counters = counters_from_cost(&self.machine, call, locality, &breakdown);
        let mut ticks = breakdown.ticks;

        // First call into the library for this routine: initialisation cost.
        let bit = 1u32 << (call.routine() as u32);
        if self.initialised & bit == 0 {
            self.initialised |= bit;
            ticks *= self.machine.blas.init_overhead_factor.max(1.0);
        }

        ticks *= self.noise_factor();
        counters.ticks = ticks;
        Measurement {
            ticks,
            flops: call.flops(),
            counters,
        }
    }

    fn fork(&self, stream: u64) -> SimExecutor {
        SimExecutor::new(self.machine.clone(), derive_stream_seed(self.seed, stream))
    }

    /// Batched repetitions: the deterministic cost breakdown is computed once
    /// and only the stochastic layer (initialisation penalty, noise stream)
    /// runs per repetition, in exactly the order the looped default would —
    /// the returned ticks are bit-identical to `count` [`Executor::execute`]
    /// calls, at a fraction of the cost.
    fn execute_ticks(&mut self, call: &Call, locality: Locality, count: usize, out: &mut Vec<f64>) {
        if count == 0 {
            return;
        }
        let breakdown = estimate_cost(&self.machine, call, locality);
        let bit = 1u32 << (call.routine() as u32);
        for _ in 0..count {
            self.executions += 1;
            let mut ticks = breakdown.ticks;
            if self.initialised & bit == 0 {
                self.initialised |= bit;
                ticks *= self.machine.blas.init_overhead_factor.max(1.0);
            }
            ticks *= self.noise_factor();
            out.push(ticks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blasprofile::openblas_like;
    use crate::cost::estimate_ticks;
    use crate::CpuSpec;
    use dla_blas::Trans;

    fn machine() -> MachineConfig {
        MachineConfig::new(CpuSpec::harpertown(), openblas_like(), 1)
    }

    fn call() -> Call {
        Call::gemm(Trans::NoTrans, Trans::NoTrans, 200, 200, 200, 1.0, 0.0)
    }

    #[test]
    fn first_call_is_much_slower() {
        let mut ex = SimExecutor::new(machine(), 1);
        let first = ex.execute(&call(), Locality::InCache).ticks;
        let later: Vec<f64> = (0..5)
            .map(|_| ex.execute(&call(), Locality::InCache).ticks)
            .collect();
        let typical = later.iter().sum::<f64>() / later.len() as f64;
        assert!(
            first > 5.0 * typical,
            "first call {first} should dwarf typical {typical}"
        );
        assert_eq!(ex.executions(), 6);
    }

    #[test]
    fn reset_library_state_restores_first_call_penalty() {
        let mut ex = SimExecutor::new(machine(), 2);
        let _ = ex.execute(&call(), Locality::InCache);
        let warm = ex.execute(&call(), Locality::InCache).ticks;
        ex.reset_library_state();
        let cold = ex.execute(&call(), Locality::InCache).ticks;
        assert!(cold > 3.0 * warm);
    }

    #[test]
    fn noise_is_a_few_percent() {
        let mut ex = SimExecutor::new(machine(), 3);
        let _ = ex.execute(&call(), Locality::InCache); // discard init
        let samples: Vec<f64> = (0..200)
            .map(|_| ex.execute(&call(), Locality::InCache).ticks)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let base = estimate_ticks(&machine(), &call(), Locality::InCache);
        assert!(
            (mean / base - 1.0).abs() < 0.1,
            "mean {mean} vs base {base}"
        );
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "noise should spread the measurements");
        // Fluctuations of roughly the order the paper reports (a few percent
        // to ~10 % including outliers).
        assert!((max - min) / mean < 1.2);
        assert!((max - min) / mean > 0.01);
    }

    #[test]
    fn noiseless_executor_is_deterministic() {
        let mut ex = SimExecutor::noiseless(machine());
        let a = ex.execute(&call(), Locality::InCache).ticks;
        let b = ex.execute(&call(), Locality::InCache).ticks;
        assert_eq!(a, b);
        assert_eq!(
            a,
            estimate_ticks(&ex.machine().clone(), &call(), Locality::InCache)
        );
    }

    #[test]
    fn same_seed_reproduces_measurements() {
        let mut ex1 = SimExecutor::new(machine(), 77);
        let mut ex2 = SimExecutor::new(machine(), 77);
        for _ in 0..10 {
            let a = ex1.execute(&call(), Locality::OutOfCache).ticks;
            let b = ex2.execute(&call(), Locality::OutOfCache).ticks;
            assert_eq!(a, b);
        }
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let ex = SimExecutor::new(machine(), 9);
        let mut a = ex.fork(3);
        let mut b = ex.fork(3);
        let mut c = ex.fork(4);
        let mut distinct = false;
        for _ in 0..10 {
            let ta = a.execute(&call(), Locality::InCache).ticks;
            let tb = b.execute(&call(), Locality::InCache).ticks;
            let tc = c.execute(&call(), Locality::InCache).ticks;
            assert_eq!(ta, tb, "same stream id must replay the same noise");
            if ta != tc {
                distinct = true;
            }
        }
        assert!(distinct, "different streams must produce different noise");
    }

    #[test]
    fn fork_starts_with_fresh_library_state() {
        let mut ex = SimExecutor::new(machine(), 10);
        let _ = ex.execute(&call(), Locality::InCache);
        let warm = ex.execute(&call(), Locality::InCache).ticks;
        let mut child = ex.fork(0);
        let cold = child.execute(&call(), Locality::InCache).ticks;
        assert!(cold > 3.0 * warm, "fork must pay the first-call penalty");
    }

    #[test]
    fn executors_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimExecutor>();
        assert_send::<crate::NativeExecutor>();
    }

    #[test]
    fn measurement_reports_flops_and_counters() {
        let mut ex = SimExecutor::new(machine(), 5);
        let m = ex.execute(&call(), Locality::InCache);
        assert_eq!(m.flops, call().flops());
        assert_eq!(m.counters.ticks, m.ticks);
        assert!(m.efficiency(ex.machine()) > 0.0);
    }
}
