//! Wall-clock execution of the pure-Rust kernels.
//!
//! The simulated machine makes the experiments hermetic and reproducible, but
//! the stack also supports modeling the machine the reproduction itself runs
//! on: the [`NativeExecutor`] prepares real operands, executes the `dla-blas`
//! kernels and converts the measured wall-clock time into ticks using the
//! configured clock frequency.

use std::time::Instant;

use dla_blas::execute::PreparedCall;
use dla_blas::Call;

use crate::counters::CounterSet;
use crate::{Executor, Locality, MachineConfig, Measurement};

/// Executes calls natively and measures wall-clock time.
#[derive(Debug, Clone)]
pub struct NativeExecutor {
    machine: MachineConfig,
    seed: u64,
    /// Scratch buffer larger than the last-level cache, touched before every
    /// out-of-cache measurement to evict the operands.
    flush_buffer: Vec<f64>,
}

impl NativeExecutor {
    /// Creates a native executor.
    ///
    /// `machine` describes the host (its `freq_ghz` converts seconds into
    /// ticks; its cache sizes size the eviction buffer).
    pub fn new(machine: MachineConfig, seed: u64) -> NativeExecutor {
        let llc = machine
            .cpu
            .last_level_cache()
            .map(|c| c.size_bytes)
            .unwrap_or(8 * 1024 * 1024);
        // Twice the LLC, in doubles.
        let flush_len = (2 * llc) / std::mem::size_of::<f64>();
        NativeExecutor {
            machine,
            seed,
            flush_buffer: vec![0.0; flush_len.max(1)],
        }
    }

    fn flush_caches(&mut self) {
        // Write the whole buffer so the cache is filled with unrelated lines.
        for (i, v) in self.flush_buffer.iter_mut().enumerate() {
            *v = (i % 1024) as f64;
        }
        // Prevent the loop from being optimised away.
        std::hint::black_box(&self.flush_buffer);
    }
}

impl Executor for NativeExecutor {
    fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn execute(&mut self, call: &Call, locality: Locality) -> Measurement {
        let mut prepared = PreparedCall::new(call, self.seed);
        match locality {
            Locality::InCache => {
                // Warm the operands (and the instruction paths) once.
                prepared.reset_and_run();
            }
            Locality::OutOfCache => {
                prepared.reset();
                self.flush_caches();
            }
        }
        prepared.reset();
        let start = Instant::now();
        prepared.run();
        let seconds = start.elapsed().as_secs_f64();
        let ticks = self.machine.cpu.seconds_to_ticks(seconds);
        let flops = call.flops();
        Measurement {
            ticks,
            flops,
            counters: CounterSet {
                ticks,
                flops,
                ..CounterSet::default()
            },
        }
    }

    fn fork(&self, _stream: u64) -> NativeExecutor {
        // Wall-clock timing carries no executor-owned randomness, so a fork
        // is simply a clone (each worker gets its own flush buffer).
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blasprofile::openblas_like;
    use crate::CpuSpec;
    use dla_blas::Trans;

    fn machine() -> MachineConfig {
        MachineConfig::new(CpuSpec::harpertown(), openblas_like(), 1)
    }

    #[test]
    fn native_measurements_are_positive_and_scale_with_size() {
        let mut ex = NativeExecutor::new(machine(), 1);
        let small = Call::gemm(Trans::NoTrans, Trans::NoTrans, 16, 16, 16, 1.0, 0.0);
        let large = Call::gemm(Trans::NoTrans, Trans::NoTrans, 96, 96, 96, 1.0, 0.0);
        let t_small = ex.execute(&small, Locality::InCache).ticks;
        let t_large = ex.execute(&large, Locality::InCache).ticks;
        assert!(t_small > 0.0);
        assert!(t_large > t_small, "{t_large} should exceed {t_small}");
    }

    #[test]
    fn out_of_cache_path_runs() {
        let mut ex = NativeExecutor::new(machine(), 2);
        let call = Call::gemm(Trans::NoTrans, Trans::NoTrans, 32, 32, 32, 1.0, 0.0);
        let m = ex.execute(&call, Locality::OutOfCache);
        assert!(m.ticks > 0.0);
        assert_eq!(m.flops, call.flops());
    }
}
