//! # dla-algos
//!
//! The blocked dense-linear-algebra workloads whose variants the paper ranks:
//!
//! * [`trinv`] — inversion of a lower-triangular matrix (`L <- L^-1`), the
//!   paper's motivating example, with the four blocked algorithmic variants of
//!   Section IV-A built on `dtrmm`, `dtrsm`, `dgemm` and an unblocked
//!   triangular inversion.
//! * [`sylv`] — the triangular Sylvester equation `L X + X U = C` of
//!   Section IV-B, with a systematically parameterised family of sixteen
//!   blocked variants (see `DESIGN.md` for how the family maps onto the
//!   CL1CK-generated variants of the paper).
//!
//! Each algorithm is written once against a small *context* trait
//! ([`trinv::TrinvCtx`], [`sylv::SylvCtx`]) and instantiated twice:
//!
//! * a **compute context** executes the updates on real matrices using the
//!   pure-Rust kernels of `dla-blas` (used by the correctness tests and the
//!   native executor), and
//! * a **trace context** records the sequence of routine calls without
//!   touching any data (used by the Predictor, exactly like the paper's
//!   "list of subroutine invocations").

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod sylv;
pub mod trinv;

pub use sylv::{sylv_compute, sylv_trace, SylvVariant};
pub use trinv::{trinv_compute, trinv_trace, TrinvVariant};
