//! Blocked solution of the triangular Sylvester equation `L X + X U = C`.
//!
//! `L` is lower triangular (`m x m`), `U` is upper triangular (`n x n`) and
//! `X` (`m x n`) holds `C` on entry and the solution on exit.
//!
//! The paper generates sixteen blocked algorithmic variants with CL1CK; they
//! differ in how the matrices are traversed and where the update GEMMs and the
//! recursive solves happen, which splits them into a small group of fast,
//! GEMM-rich variants and a large group of slow variants that push most of
//! their work through low-efficiency panel solves.  This module reproduces
//! that structure with a systematically parameterised family (see
//! `DESIGN.md`): each variant is defined by four binary choices —
//!
//! * the order in which the row panel and the column panel of each diagonal
//!   step are processed,
//! * whether updates are applied **eagerly** (propagated to the trailing
//!   matrix right after each step) or **lazily** (accumulated right before a
//!   block is solved),
//! * whether the **row panels** are solved block by block (GEMM-rich, fast) or
//!   as a single unblocked panel solve (slow), and
//! * the same choice for the **column panels**.
//!
//! With the numbering used here the four variants whose panels are both
//! solved block by block are variants 1, 2, 5 and 6 — the same indices the
//! paper reports as the fast group.

use dla_blas::{dgemm, dsylv_unb, Call, Trans};
use dla_mat::{Matrix, Rect};

/// One of the sixteen blocked Sylvester variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SylvVariant {
    id: usize,
}

impl SylvVariant {
    /// Creates a variant from its 1-based index (1..=16).
    pub fn new(id: usize) -> Option<SylvVariant> {
        if (1..=16).contains(&id) {
            Some(SylvVariant { id })
        } else {
            None
        }
    }

    /// All sixteen variants in index order.
    pub fn all() -> Vec<SylvVariant> {
        (1..=16).map(|id| SylvVariant { id }).collect()
    }

    /// The 1-based variant index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Human-readable name ("variant 7").
    pub fn name(&self) -> String {
        format!("variant {}", self.id)
    }

    fn bits(&self) -> (bool, bool, bool, bool) {
        let v = self.id - 1;
        (v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0)
    }

    /// Whether the column panel is processed before the row panel.
    pub fn column_panel_first(&self) -> bool {
        self.bits().0
    }

    /// Whether the row panels are solved with a single unblocked panel solve.
    pub fn row_panel_unblocked(&self) -> bool {
        self.bits().1
    }

    /// Whether updates are propagated eagerly to the trailing matrix.
    pub fn eager(&self) -> bool {
        self.bits().2
    }

    /// Whether the column panels are solved with a single unblocked panel solve.
    pub fn column_panel_unblocked(&self) -> bool {
        self.bits().3
    }

    /// Variants whose panels are both processed block by block route almost
    /// all of their work through `dgemm` and form the fast group.
    pub fn is_gemm_rich(&self) -> bool {
        !self.row_panel_unblocked() && !self.column_panel_unblocked()
    }
}

/// The operations a blocked Sylvester variant performs.
///
/// All operands are identified by rectangular blocks of the three matrices:
/// `L` blocks in the first argument of [`SylvCtx::gemm_lx`], `U` blocks in the
/// second argument of [`SylvCtx::gemm_xu`], and `X` blocks everywhere else.
pub trait SylvCtx {
    /// `X[c] <- X[c] + alpha * L[a] * X[b]`.
    fn gemm_lx(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect);
    /// `X[c] <- X[c] + alpha * X[a] * U[b]`.
    fn gemm_xu(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect);
    /// Solves `L[l] * X[x] + X[x] * U[u] = X[x]` in place (unblocked kernel).
    fn solve(&mut self, l: Rect, u: Rect, x: Rect);
}

/// Partitions a dimension of length `total` into blocks of size `b` (the last
/// block may be smaller); returns `(start, len)` pairs.
fn blocks(total: usize, b: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < total {
        let len = b.min(total - start);
        out.push((start, len));
        start += len;
    }
    out
}

/// Contiguous span covering blocks `i0..i1` of a partition.
fn span(partition: &[(usize, usize)], i0: usize, i1: usize) -> (usize, usize) {
    if i0 >= i1 {
        let start = partition.get(i0).map(|&(s, _)| s).unwrap_or(0);
        return (start, 0);
    }
    let start = partition[i0].0;
    let end = partition[i1 - 1].0 + partition[i1 - 1].1;
    (start, end - start)
}

/// Runs one blocked variant, issuing its updates to the context.
pub fn sylv_blocked<C: SylvCtx>(variant: SylvVariant, ctx: &mut C, m: usize, n: usize, b: usize) {
    let b = b.max(1);
    let rb = blocks(m, b);
    let cb = blocks(n, b);
    let (mm, nn) = (rb.len(), cb.len());
    let kk = mm.min(nn);
    let eager = variant.eager();

    // Rect constructors: L is indexed by row blocks in both dimensions, U by
    // column blocks in both dimensions, X by row blocks x column blocks.
    let l_rect = |r0: usize, r1: usize, c0: usize, c1: usize| {
        let (rs, rl) = span(&rb, r0, r1);
        let (cs, cl) = span(&rb, c0, c1);
        Rect::new(rs, cs, rl, cl)
    };
    let u_rect = |r0: usize, r1: usize, c0: usize, c1: usize| {
        let (rs, rl) = span(&cb, r0, r1);
        let (cs, cl) = span(&cb, c0, c1);
        Rect::new(rs, cs, rl, cl)
    };
    let x_rect = |r0: usize, r1: usize, c0: usize, c1: usize| {
        let (rs, rl) = span(&rb, r0, r1);
        let (cs, cl) = span(&cb, c0, c1);
        Rect::new(rs, cs, rl, cl)
    };
    let nonempty = |r: &Rect| !r.is_empty();

    let gemm_lx = |ctx: &mut C, a: Rect, x: Rect, c: Rect| {
        if nonempty(&a) && nonempty(&x) && nonempty(&c) {
            ctx.gemm_lx(-1.0, a, x, c);
        }
    };
    let gemm_xu = |ctx: &mut C, x: Rect, u: Rect, c: Rect| {
        if nonempty(&x) && nonempty(&u) && nonempty(&c) {
            ctx.gemm_xu(-1.0, x, u, c);
        }
    };

    for k in 0..kk {
        // --- diagonal block X_kk ---
        if !eager && k > 0 {
            gemm_lx(
                ctx,
                l_rect(k, k + 1, 0, k),
                x_rect(0, k, k, k + 1),
                x_rect(k, k + 1, k, k + 1),
            );
            gemm_xu(
                ctx,
                x_rect(k, k + 1, 0, k),
                u_rect(0, k, k, k + 1),
                x_rect(k, k + 1, k, k + 1),
            );
        }
        ctx.solve(
            l_rect(k, k + 1, k, k + 1),
            u_rect(k, k + 1, k, k + 1),
            x_rect(k, k + 1, k, k + 1),
        );

        // --- the two panels of this step ---
        let row_panel = |ctx: &mut C| {
            if k + 1 >= nn {
                return;
            }
            if variant.row_panel_unblocked() {
                let panel = x_rect(k, k + 1, k + 1, nn);
                if eager {
                    ctx.gemm_xu(
                        -1.0,
                        x_rect(k, k + 1, k, k + 1),
                        u_rect(k, k + 1, k + 1, nn),
                        panel,
                    );
                } else {
                    if k > 0 {
                        ctx.gemm_lx(-1.0, l_rect(k, k + 1, 0, k), x_rect(0, k, k + 1, nn), panel);
                    }
                    ctx.gemm_xu(
                        -1.0,
                        x_rect(k, k + 1, 0, k + 1),
                        u_rect(0, k + 1, k + 1, nn),
                        panel,
                    );
                }
                ctx.solve(
                    l_rect(k, k + 1, k, k + 1),
                    u_rect(k + 1, nn, k + 1, nn),
                    panel,
                );
            } else {
                for j in (k + 1)..nn {
                    let target = x_rect(k, k + 1, j, j + 1);
                    if eager {
                        ctx.gemm_xu(-1.0, x_rect(k, k + 1, k, j), u_rect(k, j, j, j + 1), target);
                    } else {
                        if k > 0 {
                            ctx.gemm_lx(
                                -1.0,
                                l_rect(k, k + 1, 0, k),
                                x_rect(0, k, j, j + 1),
                                target,
                            );
                        }
                        ctx.gemm_xu(-1.0, x_rect(k, k + 1, 0, j), u_rect(0, j, j, j + 1), target);
                    }
                    ctx.solve(
                        l_rect(k, k + 1, k, k + 1),
                        u_rect(j, j + 1, j, j + 1),
                        target,
                    );
                }
            }
        };
        let col_panel = |ctx: &mut C| {
            if k + 1 >= mm {
                return;
            }
            if variant.column_panel_unblocked() {
                let panel = x_rect(k + 1, mm, k, k + 1);
                if eager {
                    ctx.gemm_lx(
                        -1.0,
                        l_rect(k + 1, mm, k, k + 1),
                        x_rect(k, k + 1, k, k + 1),
                        panel,
                    );
                } else {
                    ctx.gemm_lx(
                        -1.0,
                        l_rect(k + 1, mm, 0, k + 1),
                        x_rect(0, k + 1, k, k + 1),
                        panel,
                    );
                    if k > 0 {
                        ctx.gemm_xu(-1.0, x_rect(k + 1, mm, 0, k), u_rect(0, k, k, k + 1), panel);
                    }
                }
                ctx.solve(
                    l_rect(k + 1, mm, k + 1, mm),
                    u_rect(k, k + 1, k, k + 1),
                    panel,
                );
            } else {
                for i in (k + 1)..mm {
                    let target = x_rect(i, i + 1, k, k + 1);
                    if eager {
                        ctx.gemm_lx(-1.0, l_rect(i, i + 1, k, i), x_rect(k, i, k, k + 1), target);
                    } else {
                        ctx.gemm_lx(-1.0, l_rect(i, i + 1, 0, i), x_rect(0, i, k, k + 1), target);
                        if k > 0 {
                            ctx.gemm_xu(
                                -1.0,
                                x_rect(i, i + 1, 0, k),
                                u_rect(0, k, k, k + 1),
                                target,
                            );
                        }
                    }
                    ctx.solve(
                        l_rect(i, i + 1, i, i + 1),
                        u_rect(k, k + 1, k, k + 1),
                        target,
                    );
                }
            }
        };
        if variant.column_panel_first() {
            col_panel(ctx);
            row_panel(ctx);
        } else {
            row_panel(ctx);
            col_panel(ctx);
        }

        // --- eager trailing update ---
        if eager && k + 1 < mm && k + 1 < nn {
            let trailing = x_rect(k + 1, mm, k + 1, nn);
            gemm_lx(
                ctx,
                l_rect(k + 1, mm, k, k + 1),
                x_rect(k, k + 1, k + 1, nn),
                trailing,
            );
            gemm_xu(
                ctx,
                x_rect(k + 1, mm, k, k + 1),
                u_rect(k, k + 1, k + 1, nn),
                trailing,
            );
        }
    }
}

/// Compute context: applies the updates to real matrices.
pub struct SylvCompute<'a> {
    l: &'a Matrix,
    u: &'a Matrix,
    x: &'a mut Matrix,
}

impl<'a> SylvCompute<'a> {
    /// Wraps the three operands; `x` holds `C` on entry and the solution on
    /// exit.
    pub fn new(l: &'a Matrix, u: &'a Matrix, x: &'a mut Matrix) -> Self {
        assert!(l.is_square(), "L must be square");
        assert!(u.is_square(), "U must be square");
        assert_eq!(l.rows(), x.rows(), "L order must equal X rows");
        assert_eq!(u.rows(), x.cols(), "U order must equal X cols");
        SylvCompute { l, u, x }
    }
}

impl SylvCtx for SylvCompute<'_> {
    fn gemm_lx(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect) {
        let (c_view, refs) = self
            .x
            .split_one_mut(c, &[b])
            // lint: allow(unwrap): the blocked algorithm's partitioning makes target and source blocks disjoint by construction
            .expect("gemm_lx: target block overlaps source block");
        // lint: allow(unwrap): partition rectangles are within the operand by construction
        let a_view = self.l.block(a).expect("gemm_lx: L block out of bounds");
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            alpha,
            a_view,
            refs[0],
            1.0,
            c_view,
        );
    }

    fn gemm_xu(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect) {
        let (c_view, refs) = self
            .x
            .split_one_mut(c, &[a])
            // lint: allow(unwrap): the blocked algorithm's partitioning makes target and source blocks disjoint by construction
            .expect("gemm_xu: target block overlaps source block");
        // lint: allow(unwrap): partition rectangles are within the operand by construction
        let b_view = self.u.block(b).expect("gemm_xu: U block out of bounds");
        dgemm(
            Trans::NoTrans,
            Trans::NoTrans,
            alpha,
            refs[0],
            b_view,
            1.0,
            c_view,
        );
    }

    fn solve(&mut self, l: Rect, u: Rect, x: Rect) {
        // lint: allow(unwrap): partition rectangles are within the operand by construction
        let l_view = self.l.block(l).expect("solve: L block out of bounds");
        // lint: allow(unwrap): partition rectangles are within the operand by construction
        let u_view = self.u.block(u).expect("solve: U block out of bounds");
        // lint: allow(unwrap): partition rectangles are within the operand by construction
        let x_view = self.x.block_mut(x).expect("solve: X block out of bounds");
        dsylv_unb(l_view, u_view, x_view);
    }
}

/// Trace context: records the call sequence without executing it.
pub struct SylvTrace {
    ld: usize,
    calls: Vec<Call>,
}

impl SylvTrace {
    /// Creates a trace recorder; `ld` is the leading dimension reported for
    /// every operand.
    pub fn new(ld: usize) -> Self {
        SylvTrace {
            ld: ld.max(1),
            calls: Vec::new(),
        }
    }

    /// The recorded calls.
    pub fn into_calls(self) -> Vec<Call> {
        self.calls
    }
}

impl SylvCtx for SylvTrace {
    fn gemm_lx(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect) {
        let _ = b;
        self.calls.push(Call::Gemm {
            transa: Trans::NoTrans,
            transb: Trans::NoTrans,
            m: c.rows,
            n: c.cols,
            k: a.cols,
            alpha,
            beta: 1.0,
            lda: self.ld,
            ldb: self.ld,
            ldc: self.ld,
        });
    }

    fn gemm_xu(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect) {
        let _ = a;
        self.calls.push(Call::Gemm {
            transa: Trans::NoTrans,
            transb: Trans::NoTrans,
            m: c.rows,
            n: c.cols,
            k: b.rows,
            alpha,
            beta: 1.0,
            lda: self.ld,
            ldb: self.ld,
            ldc: self.ld,
        });
    }

    fn solve(&mut self, l: Rect, u: Rect, x: Rect) {
        let _ = (l, u);
        self.calls.push(Call::SylvUnb {
            m: x.rows,
            n: x.cols,
            ldl: self.ld,
            ldu: self.ld,
            ldx: self.ld,
        });
    }
}

/// Solves `L X + X U = C` in place (`x` holds `C` on entry) with the given
/// blocked variant and block size.
pub fn sylv_compute(
    variant: SylvVariant,
    l: &Matrix,
    u: &Matrix,
    x: &mut Matrix,
    block_size: usize,
) {
    let (m, n) = (x.rows(), x.cols());
    let mut ctx = SylvCompute::new(l, u, x);
    sylv_blocked(variant, &mut ctx, m, n, block_size);
}

/// Returns the call trace of running the given variant on an `m x n` problem.
pub fn sylv_trace(
    variant: SylvVariant,
    m: usize,
    n: usize,
    block_size: usize,
    ld: usize,
) -> Vec<Call> {
    let mut ctx = SylvTrace::new(ld);
    sylv_blocked(variant, &mut ctx, m, n, block_size);
    ctx.into_calls()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::flops::{sylv_useful_flops, trace_flops};
    use dla_blas::Routine;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops::{add, matmul, sub};

    fn residual(l: &Matrix, u: &Matrix, x: &Matrix, c: &Matrix) -> f64 {
        let lx = matmul(1.0, l, x).unwrap();
        let xu = matmul(1.0, x, u).unwrap();
        let sum = add(&lx, &xu).unwrap();
        sub(&sum, c).unwrap().max_abs()
    }

    #[test]
    fn all_sixteen_variants_solve_square_problems() {
        let mut g = MatrixGenerator::new(200);
        for &(m, n, b) in &[(48usize, 48usize, 16usize), (60, 60, 24), (33, 33, 8)] {
            let l = g.lower_triangular(m, false);
            let u = g.upper_triangular(n, false);
            let c = g.general(m, n);
            for variant in SylvVariant::all() {
                let mut x = c.clone();
                sylv_compute(variant, &l, &u, &mut x, b);
                let r = residual(&l, &u, &x, &c);
                assert!(
                    r < 1e-8,
                    "{} m={m} n={n} b={b}: residual {r}",
                    variant.name()
                );
            }
        }
    }

    #[test]
    fn rectangular_problems_are_solved() {
        let mut g = MatrixGenerator::new(201);
        for &(m, n) in &[(40usize, 72usize), (72, 40), (25, 10), (10, 25)] {
            let l = g.lower_triangular(m, false);
            let u = g.upper_triangular(n, false);
            let c = g.general(m, n);
            for variant in SylvVariant::all() {
                let mut x = c.clone();
                sylv_compute(variant, &l, &u, &mut x, 16);
                let r = residual(&l, &u, &x, &c);
                assert!(r < 1e-8, "{} m={m} n={n}: residual {r}", variant.name());
            }
        }
    }

    #[test]
    fn block_size_larger_than_problem_reduces_to_unblocked() {
        let mut g = MatrixGenerator::new(202);
        let l = g.lower_triangular(12, false);
        let u = g.upper_triangular(12, false);
        let c = g.general(12, 12);
        let mut x = c.clone();
        sylv_compute(SylvVariant::new(1).unwrap(), &l, &u, &mut x, 100);
        assert!(residual(&l, &u, &x, &c) < 1e-10);
        let trace = sylv_trace(SylvVariant::new(1).unwrap(), 12, 12, 100, 12);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].routine(), Routine::SylvUnb);
    }

    #[test]
    fn variant_ids_and_classification() {
        assert!(SylvVariant::new(0).is_none());
        assert!(SylvVariant::new(17).is_none());
        assert_eq!(SylvVariant::all().len(), 16);
        let fast: Vec<usize> = SylvVariant::all()
            .into_iter()
            .filter(|v| v.is_gemm_rich())
            .map(|v| v.id())
            .collect();
        assert_eq!(
            fast,
            vec![1, 2, 5, 6],
            "fast group must match the paper's indices"
        );
    }

    #[test]
    fn gemm_rich_variants_route_work_through_gemm() {
        let (m, n, b) = (480, 480, 96);
        for variant in SylvVariant::all() {
            let trace = sylv_trace(variant, m, n, b, m);
            let total = trace_flops(&trace);
            let sylv_share: f64 = trace
                .iter()
                .filter(|c| c.routine() == Routine::SylvUnb)
                .map(|c| c.flops())
                .sum::<f64>()
                / total;
            if variant.is_gemm_rich() {
                assert!(
                    sylv_share < 0.22,
                    "{}: unblocked share {sylv_share}",
                    variant.name()
                );
            } else {
                assert!(
                    sylv_share > 0.25,
                    "{}: unblocked share {sylv_share}",
                    variant.name()
                );
            }
        }
    }

    #[test]
    fn total_flops_stay_close_to_the_minimal_count() {
        let (m, n, b) = (480, 480, 96);
        let useful = sylv_useful_flops(m, n) * 2.0; // useful counts flops/2
        for variant in SylvVariant::all() {
            let total = trace_flops(&sylv_trace(variant, m, n, b, m));
            assert!(
                total > 0.8 * useful && total < 2.5 * useful,
                "{}: {total} vs useful {useful}",
                variant.name()
            );
        }
    }

    #[test]
    fn trace_and_compute_follow_the_same_control_flow() {
        struct Counter(usize);
        impl SylvCtx for Counter {
            fn gemm_lx(&mut self, _: f64, _: Rect, _: Rect, _: Rect) {
                self.0 += 1;
            }
            fn gemm_xu(&mut self, _: f64, _: Rect, _: Rect, _: Rect) {
                self.0 += 1;
            }
            fn solve(&mut self, _: Rect, _: Rect, _: Rect) {
                self.0 += 1;
            }
        }
        for variant in SylvVariant::all() {
            let mut counter = Counter(0);
            sylv_blocked(variant, &mut counter, 300, 300, 64);
            let trace = sylv_trace(variant, 300, 300, 64, 300);
            assert_eq!(counter.0, trace.len(), "{}", variant.name());
        }
    }

    #[test]
    fn eager_and_lazy_variants_differ_in_call_shapes_not_solutions() {
        let mut g = MatrixGenerator::new(203);
        let l = g.lower_triangular(64, false);
        let u = g.upper_triangular(64, false);
        let c = g.general(64, 64);
        let lazy = SylvVariant::new(1).unwrap();
        let eager = SylvVariant::new(5).unwrap();
        assert!(!lazy.eager());
        assert!(eager.eager());
        let mut x1 = c.clone();
        let mut x2 = c.clone();
        sylv_compute(lazy, &l, &u, &mut x1, 16);
        sylv_compute(eager, &l, &u, &mut x2, 16);
        assert!(x1.approx_eq(&x2, 1e-8));
        let t1 = sylv_trace(lazy, 64, 64, 16, 64);
        let t2 = sylv_trace(eager, 64, 64, 16, 64);
        assert_ne!(t1, t2);
    }
}
