//! Blocked inversion of a lower-triangular matrix (`L <- L^-1`).
//!
//! The four algorithmic variants are taken verbatim from the paper
//! (Section IV-A).  At every step the matrix is partitioned as
//!
//! ```text
//!       | L00  0    0   |
//!   L = | L10  L11  0   |        L00: j x j   (already processed)
//!       | L20  L21  L22 |        L11: b' x b' (current block, b' = min(b, n - j))
//! ```
//!
//! and a variant-specific sequence of updates is applied, followed by the
//! inversion of the diagonal block with the unblocked kernel.

use dla_blas::inplace::{dgemm_blocks, dtrmm_blocks, dtrsm_blocks, dtrtri_block};
use dla_blas::{Call, Diag, Side, Trans, Uplo};
use dla_mat::{Matrix, Rect};

/// The four blocked triangular-inversion variants of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrinvVariant {
    /// Variant 1: works on the `L10` panel with `dtrmm`/`dtrsm`.
    V1,
    /// Variant 2: works on the `L21` panel with two `dtrsm`s (one against the
    /// large trailing triangle `L22`).
    V2,
    /// Variant 3: gemm-rich variant (the fastest on the Harpertown setup).
    V3,
    /// Variant 4: touches `L22`, `L20` and `L00` every iteration and performs
    /// roughly 2.5x the minimal operation count (the slowest variant).
    V4,
}

impl TrinvVariant {
    /// All variants in paper order.
    pub const ALL: [TrinvVariant; 4] = [
        TrinvVariant::V1,
        TrinvVariant::V2,
        TrinvVariant::V3,
        TrinvVariant::V4,
    ];

    /// 1-based variant number as used in the paper's figures.
    pub fn id(&self) -> usize {
        match self {
            TrinvVariant::V1 => 1,
            TrinvVariant::V2 => 2,
            TrinvVariant::V3 => 3,
            TrinvVariant::V4 => 4,
        }
    }

    /// Parses a 1-based variant number.
    pub fn from_id(id: usize) -> Option<TrinvVariant> {
        TrinvVariant::ALL.into_iter().find(|v| v.id() == id)
    }

    /// Human-readable name ("variant 3").
    pub fn name(&self) -> String {
        format!("variant {}", self.id())
    }
}

/// The operations a blocked triangular-inversion variant performs, expressed
/// over blocks of the single matrix being inverted.
///
/// All triangular operands are lower triangular, non-transposed and non-unit;
/// `gemm` always accumulates into the target block (`beta = 1`).
pub trait TrinvCtx {
    /// `B <- alpha * op(tri) * B` (side = Left) or `B <- alpha * B * op(tri)`.
    fn trmm(&mut self, side: Side, alpha: f64, tri: Rect, b: Rect);
    /// `B <- alpha * tri^-1 * B` (side = Left) or `B <- alpha * B * tri^-1`.
    fn trsm(&mut self, side: Side, alpha: f64, tri: Rect, b: Rect);
    /// `C <- alpha * A * B + C`.
    fn gemm(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect);
    /// In-place unblocked inversion of the triangular block `a`.
    fn trtri(&mut self, a: Rect);
}

/// Runs one blocked variant over an `n x n` matrix with block size `b`,
/// issuing its updates to the context.
pub fn trinv_blocked<C: TrinvCtx>(variant: TrinvVariant, ctx: &mut C, n: usize, b: usize) {
    let b = b.max(1);
    let mut j = 0;
    while j < n {
        let bp = b.min(n - j);
        let r = n - j - bp;
        let l00 = Rect::new(0, 0, j, j);
        let l10 = Rect::new(j, 0, bp, j);
        let l11 = Rect::new(j, j, bp, bp);
        let l20 = Rect::new(j + bp, 0, r, j);
        let l21 = Rect::new(j + bp, j, r, bp);
        let l22 = Rect::new(j + bp, j + bp, r, r);
        match variant {
            TrinvVariant::V1 => {
                ctx.trmm(Side::Right, 1.0, l00, l10);
                ctx.trsm(Side::Left, -1.0, l11, l10);
                ctx.trtri(l11);
            }
            TrinvVariant::V2 => {
                ctx.trsm(Side::Left, 1.0, l22, l21);
                ctx.trsm(Side::Right, -1.0, l11, l21);
                ctx.trtri(l11);
            }
            TrinvVariant::V3 => {
                ctx.trsm(Side::Right, -1.0, l11, l21);
                ctx.gemm(1.0, l21, l10, l20);
                ctx.trsm(Side::Left, 1.0, l11, l10);
                ctx.trtri(l11);
            }
            TrinvVariant::V4 => {
                ctx.trsm(Side::Left, -1.0, l22, l21);
                ctx.gemm(-1.0, l21, l10, l20);
                ctx.trmm(Side::Right, 1.0, l00, l10);
                ctx.trtri(l11);
            }
        }
        j += bp;
    }
}

/// Compute context: applies the updates in place on a real matrix.
pub struct TrinvCompute<'a> {
    l: &'a mut Matrix,
}

impl<'a> TrinvCompute<'a> {
    /// Wraps a lower-triangular matrix for in-place inversion.
    pub fn new(l: &'a mut Matrix) -> Self {
        assert!(l.is_square(), "trinv operates on square matrices");
        TrinvCompute { l }
    }
}

impl TrinvCtx for TrinvCompute<'_> {
    fn trmm(&mut self, side: Side, alpha: f64, tri: Rect, b: Rect) {
        if b.is_empty() || tri.is_empty() {
            return;
        }
        dtrmm_blocks(
            self.l,
            side,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            alpha,
            tri,
            b,
        );
    }

    fn trsm(&mut self, side: Side, alpha: f64, tri: Rect, b: Rect) {
        if b.is_empty() || tri.is_empty() {
            return;
        }
        dtrsm_blocks(
            self.l,
            side,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            alpha,
            tri,
            b,
        );
    }

    fn gemm(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect) {
        if a.is_empty() || b.is_empty() || c.is_empty() {
            return;
        }
        dgemm_blocks(self.l, Trans::NoTrans, Trans::NoTrans, alpha, a, b, 1.0, c);
    }

    fn trtri(&mut self, a: Rect) {
        if a.is_empty() {
            return;
        }
        dtrtri_block(self.l, Uplo::Lower, Diag::NonUnit, a);
    }
}

/// Trace context: records the call sequence without executing it.
pub struct TrinvTrace {
    ld: usize,
    calls: Vec<Call>,
}

impl TrinvTrace {
    /// Creates a trace recorder; `ld` is the leading dimension reported in the
    /// recorded calls (the full matrix order, as in the paper's example trace).
    pub fn new(ld: usize) -> Self {
        TrinvTrace {
            ld: ld.max(1),
            calls: Vec::new(),
        }
    }

    /// The recorded calls.
    pub fn into_calls(self) -> Vec<Call> {
        self.calls
    }
}

impl TrinvCtx for TrinvTrace {
    fn trmm(&mut self, side: Side, alpha: f64, tri: Rect, b: Rect) {
        let _ = tri;
        self.calls.push(Call::Trmm {
            side,
            uplo: Uplo::Lower,
            transa: Trans::NoTrans,
            diag: Diag::NonUnit,
            m: b.rows,
            n: b.cols,
            alpha,
            lda: self.ld,
            ldb: self.ld,
        });
    }

    fn trsm(&mut self, side: Side, alpha: f64, tri: Rect, b: Rect) {
        let _ = tri;
        self.calls.push(Call::Trsm {
            side,
            uplo: Uplo::Lower,
            transa: Trans::NoTrans,
            diag: Diag::NonUnit,
            m: b.rows,
            n: b.cols,
            alpha,
            lda: self.ld,
            ldb: self.ld,
        });
    }

    fn gemm(&mut self, alpha: f64, a: Rect, b: Rect, c: Rect) {
        let _ = b;
        self.calls.push(Call::Gemm {
            transa: Trans::NoTrans,
            transb: Trans::NoTrans,
            m: c.rows,
            n: c.cols,
            k: a.cols,
            alpha,
            beta: 1.0,
            lda: self.ld,
            ldb: self.ld,
            ldc: self.ld,
        });
    }

    fn trtri(&mut self, a: Rect) {
        self.calls.push(Call::TrtriUnb {
            uplo: Uplo::Lower,
            diag: Diag::NonUnit,
            n: a.rows,
            lda: self.ld,
        });
    }
}

/// Inverts the lower-triangular matrix `l` in place using the given blocked
/// variant and block size.
pub fn trinv_compute(variant: TrinvVariant, l: &mut Matrix, block_size: usize) {
    let n = l.rows();
    let mut ctx = TrinvCompute::new(l);
    trinv_blocked(variant, &mut ctx, n, block_size);
}

/// Returns the call trace of running the given variant on an `n x n` matrix
/// with leading dimension `ld` and the given block size.
pub fn trinv_trace(variant: TrinvVariant, n: usize, block_size: usize, ld: usize) -> Vec<Call> {
    let mut ctx = TrinvTrace::new(ld);
    trinv_blocked(variant, &mut ctx, n, block_size);
    ctx.into_calls()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_blas::flops::{trace_flops, trinv_useful_flops};
    use dla_blas::Routine;
    use dla_mat::gen::MatrixGenerator;
    use dla_mat::ops::{invert_lower_triangular, lower_triangular};

    #[test]
    fn all_variants_invert_correctly() {
        let mut g = MatrixGenerator::new(100);
        for &n in &[1usize, 7, 16, 33, 96, 150] {
            for &b in &[4usize, 8, 32, 96] {
                let l = g.lower_triangular(n, false);
                let reference = invert_lower_triangular(&l, false).unwrap();
                for variant in TrinvVariant::ALL {
                    let mut work = l.clone();
                    trinv_compute(variant, &mut work, b);
                    let result = lower_triangular(&work, false).unwrap();
                    let diff = result.max_abs_diff(&reference);
                    assert!(
                        diff < 1e-8,
                        "{} n={n} b={b}: max diff {diff}",
                        variant.name()
                    );
                }
            }
        }
    }

    #[test]
    fn variant_ids_roundtrip() {
        for v in TrinvVariant::ALL {
            assert_eq!(TrinvVariant::from_id(v.id()), Some(v));
        }
        assert_eq!(TrinvVariant::from_id(0), None);
        assert_eq!(TrinvVariant::from_id(5), None);
        assert_eq!(TrinvVariant::V3.name(), "variant 3");
    }

    #[test]
    fn traces_have_expected_structure() {
        // The paper lists the trace of variant 1 for n = 250, b = 100:
        // 3 iterations x (dtrmm, dtrsm, unblocked inversion).
        let calls = trinv_trace(TrinvVariant::V1, 250, 100, 250);
        assert_eq!(calls.len(), 9);
        assert_eq!(calls[0].routine(), Routine::Trmm);
        assert_eq!(calls[1].routine(), Routine::Trsm);
        assert_eq!(calls[2].routine(), Routine::TrtriUnb);
        // First iteration: L10 is 100 x 0 (empty), last iteration blocks are 50 wide.
        assert_eq!(calls[0].sizes(), vec![100, 0]);
        assert_eq!(calls[6].sizes(), vec![50, 200]);
        assert_eq!(calls[8].sizes(), vec![50]);
        // Leading dimensions are the full matrix order.
        assert!(calls
            .iter()
            .all(|c| c.leading_dims().iter().all(|&ld| ld == 250)));
    }

    #[test]
    fn variant_flop_counts_match_expectations() {
        let n = 960;
        let b = 96;
        let useful = trinv_useful_flops(n);
        let flops: Vec<f64> = TrinvVariant::ALL
            .iter()
            .map(|&v| trace_flops(&trinv_trace(v, n, b, n)))
            .collect();
        // Variants 1-3 perform close to the minimal operation count ...
        for (i, &f) in flops.iter().enumerate().take(3) {
            assert!(
                f < 1.6 * useful && f > 0.7 * useful,
                "variant {} flops {f} vs useful {useful}",
                i + 1
            );
        }
        // ... while variant 4 performs roughly 2-3x more work.
        assert!(
            flops[3] > 2.0 * useful && flops[3] < 3.5 * useful,
            "variant 4 flops {} vs useful {useful}",
            flops[3]
        );
    }

    #[test]
    fn variant3_is_gemm_dominated() {
        let calls = trinv_trace(TrinvVariant::V3, 960, 96, 960);
        let gemm_flops: f64 = calls
            .iter()
            .filter(|c| c.routine() == Routine::Gemm)
            .map(|c| c.flops())
            .sum();
        let total = trace_flops(&calls);
        assert!(
            gemm_flops / total > 0.6,
            "gemm share {}",
            gemm_flops / total
        );
        // Variant 1 contains no gemm at all.
        let v1 = trinv_trace(TrinvVariant::V1, 960, 96, 960);
        assert!(v1.iter().all(|c| c.routine() != Routine::Gemm));
    }

    #[test]
    fn block_size_larger_than_matrix_degenerates_to_unblocked() {
        let calls = trinv_trace(TrinvVariant::V1, 64, 96, 64);
        // Single iteration: trmm (empty), trsm (empty), trtri of the whole matrix.
        assert_eq!(calls.len(), 3);
        assert_eq!(calls[2].sizes(), vec![64]);
        let mut g = MatrixGenerator::new(101);
        let l = g.lower_triangular(20, false);
        let mut work = l.clone();
        trinv_compute(TrinvVariant::V2, &mut work, 50);
        let reference = invert_lower_triangular(&l, false).unwrap();
        assert!(lower_triangular(&work, false)
            .unwrap()
            .approx_eq(&reference, 1e-9));
    }

    #[test]
    fn compute_and_trace_issue_the_same_number_of_operations() {
        // A counting context verifies trace generation and computation follow
        // the same control flow.
        struct Counter(usize);
        impl TrinvCtx for Counter {
            fn trmm(&mut self, _: Side, _: f64, _: Rect, _: Rect) {
                self.0 += 1;
            }
            fn trsm(&mut self, _: Side, _: f64, _: Rect, _: Rect) {
                self.0 += 1;
            }
            fn gemm(&mut self, _: f64, _: Rect, _: Rect, _: Rect) {
                self.0 += 1;
            }
            fn trtri(&mut self, _: Rect) {
                self.0 += 1;
            }
        }
        for variant in TrinvVariant::ALL {
            let mut counter = Counter(0);
            trinv_blocked(variant, &mut counter, 500, 64);
            let trace = trinv_trace(variant, 500, 64, 500);
            assert_eq!(counter.0, trace.len(), "{}", variant.name());
        }
    }
}
