//! `dla_sync`: the workspace's single point of entry for concurrency
//! primitives (the facade the `dla-lint` `sync-facade` rule enforces).
//!
//! Serving-path code (`shared.rs`, `telemetry.rs`, and
//! `dla-predict`'s `service.rs`) imports *all* of its atomics and locks from
//! here instead of `std::sync`.  That buys two things:
//!
//! * **Model checking.**  Under `--cfg interleave` (set via `RUSTFLAGS` by
//!   the `interleave` CI job) the atomics and locks become the shim types of
//!   the vendored [`interleave`] model checker, so the concurrency tests in
//!   `tests/interleave_models.rs` (and `dla-predict`'s
//!   `tests/interleave_service.rs`) exhaustively explore the interleavings —
//!   and the weak-memory store visibilities — of the real serving code, not
//!   of a transliteration that could drift.
//!
//! * **A single poison policy.**  The lock wrappers do not expose
//!   [`std::sync::PoisonError`]: `read`/`write`/`lock` return guards
//!   directly, recovering the inner value if a previous holder panicked.
//!   Recovery is sound for every lock routed through here because no critical
//!   section leaves data torn: `SharedRepository` writers only *replace* an
//!   `Arc` (a panic can abandon the replacement, never half-apply it), the
//!   service's cache shards only insert/clear whole entries into a `HashMap`
//!   (which guards its own internal consistency against unwinds), and the
//!   resolver slot is likewise replaced wholesale.  Before this policy, a
//!   panicking background rebuild could poison a shard and take the whole
//!   serving tier down with `PoisonError` unwraps on every later query —
//!   degrading to "serve what we have" is strictly better.
//!
//! [`Arc`] is deliberately `std::sync::Arc` under **both** cfgs: it appears
//! in public signatures (`Arc<ModelRepository>` snapshots,
//! `Arc<CompiledRepository>` handles), so shimming it would fork the public
//! API by cfg.  The checker still explores handle lifetimes: clones/drops of
//! `std` `Arc`s are data-race-free by construction, and the counter-lifetime
//! invariant is asserted on `strong_count` in the model tests.

/// Atomic integer/bool types plus [`atomic::Ordering`], mirroring the
/// `std::sync::atomic` module shape.
pub mod atomic {
    #[cfg(interleave)]
    pub use interleave::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    #[cfg(not(interleave))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

pub use std::sync::Arc;

#[cfg(interleave)]
pub use interleave::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(interleave))]
mod std_locks {
    use std::sync::PoisonError;

    /// Non-poisoning wrapper over [`std::sync::RwLock`]; see the module docs
    /// for why recovery is the right policy on these locks.
    pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

    /// Shared-access guard returned by [`RwLock::read`].
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    /// Exclusive-access guard returned by [`RwLock::write`].
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    impl<T> RwLock<T> {
        /// Creates a new lock holding `value`.
        pub fn new(value: T) -> RwLock<T> {
            RwLock(std::sync::RwLock::new(value))
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access, recovering from poison.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.0.read().unwrap_or_else(PoisonError::into_inner)
        }

        /// Acquires exclusive write access, recovering from poison.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.0.write().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> RwLock<T> {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("RwLock(..)")
        }
    }

    /// Non-poisoning wrapper over [`std::sync::Mutex`]; see the module docs
    /// for why recovery is the right policy on these locks.
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Creates a new mutex holding `value`.
        pub fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the mutex, recovering from poison.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Mutex(..)")
        }
    }
}

#[cfg(not(interleave))]
pub use std_locks::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicU64, Ordering};
    use super::{Mutex, RwLock};

    #[test]
    fn facade_types_behave_like_std() {
        let a = AtomicU64::new(1);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 1);
        assert_eq!(a.load(Ordering::Relaxed), 3);

        let l = RwLock::new(5u64);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);

        let m = Mutex::new(7u64);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);
    }

    /// The poison policy: a panicking holder must not take the lock (or the
    /// serving tier above it) down with it.
    #[cfg(not(interleave))]
    #[test]
    fn poisoned_locks_recover() {
        use super::Arc;

        let l = Arc::new(RwLock::new(1u64));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.read(), 1, "read after poison still serves");
        *l.write() = 2;
        assert_eq!(*l.read(), 2);

        let m = Arc::new(Mutex::new(1u64));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
