//! Models of a whole routine: one piecewise model per flag combination.

use std::collections::HashMap;

use dla_blas::{Call, Routine};
use dla_machine::Locality;
use dla_mat::stats::Summary;

use crate::{ModelError, PiecewiseModel, Region, Result};

/// The submodel key of a call: its flag indices with the `diag` flag removed.
///
/// The paper's preliminary experiments (Section III-A1) show that all flag
/// combinations must be modelled separately *except* `diag`, whose influence
/// is minor; folding it halves the number of submodels for the triangular
/// routines.
pub fn submodel_key(call: &Call) -> Vec<usize> {
    submodel_key_fixed(call).to_vec()
}

/// The number of flags kept in a submodel key for `routine` (the routine's
/// flag count, with the `diag` flag folded away where applicable).
fn submodel_flag_count(routine: Routine) -> usize {
    match routine {
        // side, uplo, transA, diag -> drop diag
        Routine::Trsm | Routine::Trmm => 3,
        // uplo, diag -> drop diag
        Routine::TrtriUnb => 1,
        other => other.flag_count(),
    }
}

/// A fixed-capacity, allocation-free form of [`submodel_key`].
///
/// No routine keeps more than [`Call::MAX_FLAGS`] flags in its key and every
/// flag index fits in a `u8`, so per-call submodel lookups in the compiled
/// evaluation engine never touch the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlagKey {
    len: u8,
    flags: [u8; Call::MAX_FLAGS],
}

impl FlagKey {
    /// Converts a heap-allocated submodel key; `None` if it does not fit
    /// (only possible for hand-crafted repositories — every key produced by
    /// [`submodel_key`] fits).
    pub fn from_slice(key: &[usize]) -> Option<FlagKey> {
        if key.len() > Call::MAX_FLAGS {
            return None;
        }
        let mut flags = [0u8; Call::MAX_FLAGS];
        for (slot, &f) in flags.iter_mut().zip(key) {
            *slot = u8::try_from(f).ok()?;
        }
        Some(FlagKey {
            len: key.len() as u8,
            flags,
        })
    }

    /// Number of flags in the key.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the key holds no flags.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The key as a heap-allocated [`submodel_key`]-style vector.
    // lint: allow(panic-free): len never exceeds MAX_FLAGS by construction
    pub fn to_vec(&self) -> Vec<usize> {
        self.flags[..self.len()]
            .iter()
            .map(|&f| f as usize)
            .collect()
    }
}

/// The submodel key of a call as a fixed-size [`FlagKey`] — the
/// allocation-free counterpart of [`submodel_key`], used by the compiled
/// evaluation engine's per-call lookups.
// lint: allow(panic-free): kept <= len <= MAX_FLAGS bounds the tail slice
pub fn submodel_key_fixed(call: &Call) -> FlagKey {
    let (mut flags, len) = call.flag_indices_fixed();
    let kept = len.min(submodel_flag_count(call.routine()));
    // Zero the dropped flags: derived equality/hashing covers the whole
    // array, so a folded `diag` flag must not distinguish two keys.
    for f in &mut flags[kept..] {
        *f = 0;
    }
    FlagKey {
        len: kept as u8,
        flags,
    }
}

/// A performance model of one routine on one machine configuration and
/// memory-locality scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineModel {
    /// The modelled routine.
    pub routine: Routine,
    /// Identifier of the machine configuration the model was built on
    /// ([`dla_machine::MachineConfig::id`]).
    pub machine_id: String,
    /// The memory-locality scenario the measurements were taken under.
    pub locality: Locality,
    /// The integer parameter space covered by the submodels.
    pub space: Region,
    /// One piecewise model per flag combination (keyed by [`submodel_key`]).
    pub submodels: HashMap<Vec<usize>, PiecewiseModel>,
}

impl RoutineModel {
    /// Creates an empty routine model.
    pub fn new(
        routine: Routine,
        machine_id: impl Into<String>,
        locality: Locality,
        space: Region,
    ) -> RoutineModel {
        RoutineModel {
            routine,
            machine_id: machine_id.into(),
            locality,
            space,
            submodels: HashMap::new(),
        }
    }

    /// Inserts (or replaces) the submodel for a flag combination.
    pub fn insert_submodel(&mut self, key: Vec<usize>, model: PiecewiseModel) {
        self.submodels.insert(key, model);
    }

    /// Merges another model of the same routine/machine/locality into this
    /// one at **submodel granularity**: every submodel of `other` replaces
    /// the one under the same flag key here, while flag variants present only
    /// in `self` are kept.  This is the unit the repository-level
    /// [`merge_models`](crate::ModelRepository::merge_models) and the online
    /// refinement loop's incremental publish are built on — a delta holding a
    /// single rebuilt flag variant must not wipe out its siblings.
    ///
    /// If the two parameter spaces differ, the merged space becomes their
    /// envelope (element-wise min/max), so every retained submodel stays
    /// inside the declared space and `estimate`'s clamping keeps working for
    /// both sides.
    pub fn merge_from(&mut self, other: RoutineModel) {
        debug_assert_eq!(
            self.routine, other.routine,
            "merge_from requires matching routines"
        );
        if self.space != other.space && self.space.dim() == other.space.dim() {
            let lo: Vec<usize> = self
                .space
                .lo()
                .iter()
                .zip(other.space.lo())
                .map(|(&a, &b)| a.min(b))
                .collect();
            let hi: Vec<usize> = self
                .space
                .hi()
                .iter()
                .zip(other.space.hi())
                .map(|(&a, &b)| a.max(b))
                .collect();
            self.space = Region::new(lo, hi);
        }
        for (key, submodel) in other.submodels {
            self.submodels.insert(key, submodel);
        }
    }

    /// The submodel for a flag combination, if present.
    pub fn submodel(&self, key: &[usize]) -> Option<&PiecewiseModel> {
        self.submodels.get(key)
    }

    /// Total number of samples used across all submodels.
    pub fn total_samples(&self) -> usize {
        self.submodels.values().map(|m| m.total_samples).sum()
    }

    /// Number of flag combinations modelled.
    pub fn submodel_count(&self) -> usize {
        self.submodels.len()
    }

    /// Estimates the performance of `call`.
    ///
    /// The call's routine must match; its sizes are clamped into the model's
    /// parameter space (the paper limits unblocked models to small dimensions
    /// and evaluates them only there, so clamping only matters at the fringes
    /// of the space).
    pub fn estimate(&self, call: &Call) -> Result<Summary> {
        if call.routine() != self.routine {
            return Err(ModelError::MissingSubmodel(format!(
                "model is for {}, call is {}",
                self.routine,
                call.routine()
            )));
        }
        let key = submodel_key(call);
        let submodel = self.submodels.get(&key).ok_or_else(|| {
            ModelError::MissingSubmodel(format!(
                "no submodel for {} flags {:?} ({})",
                self.routine,
                key,
                call.flag_chars()
            ))
        })?;
        let sizes = call.sizes();
        let clamped: Vec<usize> = sizes
            .iter()
            .enumerate()
            // lint: allow(panic-free): size arity matches the model space's dimension for the routine
            .map(|(d, &s)| s.clamp(self.space.lo()[d], self.space.hi()[d]))
            .collect();
        submodel.eval(&clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegionModel, VectorPolynomial};
    use dla_blas::{Diag, Side, Trans, Uplo};
    use dla_mat::stats::Quantity;

    fn constant_submodel(space: &Region, value: f64) -> PiecewiseModel {
        // A single region whose polynomials are constants.
        let polys = Quantity::ALL
            .iter()
            .map(|_| {
                crate::Polynomial::new(space.dim(), vec![vec![0; space.dim()]], vec![value])
                    .unwrap()
            })
            .collect();
        let vp = VectorPolynomial::new(polys).unwrap();
        let rm = RegionModel {
            region: space.clone(),
            poly: vp,
            error: 0.01,
            samples_used: 4,
            revision: 0,
        };
        PiecewiseModel::new(space.clone(), vec![rm], 4)
    }

    #[test]
    fn submodel_key_drops_diag() {
        let a = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            64,
            64,
            1.0,
        );
        let b = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            64,
            64,
            1.0,
        );
        assert_eq!(submodel_key(&a), submodel_key(&b));
        assert_eq!(submodel_key(&a), vec![0, 0, 0]);
        let c = Call::trsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            64,
            64,
            1.0,
        );
        assert_ne!(submodel_key(&a), submodel_key(&c));
        let g = Call::gemm(Trans::NoTrans, Trans::Trans, 8, 8, 8, 1.0, 0.0);
        assert_eq!(submodel_key(&g), vec![0, 1]);
        let t = Call::trtri_unb(Uplo::Upper, Diag::Unit, 32);
        assert_eq!(submodel_key(&t), vec![1]);
        let s = Call::sylv_unb(8, 8);
        assert!(submodel_key(&s).is_empty());
    }

    #[test]
    fn fixed_key_matches_vec_key() {
        let calls = [
            Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::NonUnit,
                64,
                64,
                1.0,
            ),
            Call::trsm(
                Side::Left,
                Uplo::Lower,
                Trans::NoTrans,
                Diag::Unit,
                64,
                64,
                1.0,
            ),
            Call::gemm(Trans::NoTrans, Trans::Trans, 8, 8, 8, 1.0, 0.0),
            Call::trtri_unb(Uplo::Upper, Diag::Unit, 32),
            Call::sylv_unb(8, 8),
        ];
        for call in &calls {
            let fixed = submodel_key_fixed(call);
            assert_eq!(fixed.to_vec(), submodel_key(call), "{call}");
            assert_eq!(fixed.len(), submodel_key(call).len());
            assert_eq!(FlagKey::from_slice(&submodel_key(call)), Some(fixed));
        }
        // Folding diag must make the unit/non-unit keys *equal*, including
        // under derived Eq/Hash.
        assert_eq!(submodel_key_fixed(&calls[0]), submodel_key_fixed(&calls[1]));
        assert!(submodel_key_fixed(&calls[4]).is_empty());
        // Keys that cannot fit are rejected, not truncated.
        assert_eq!(FlagKey::from_slice(&[1, 2, 3, 4, 5]), None);
        assert_eq!(FlagKey::from_slice(&[300]), None);
        assert!(FlagKey::from_slice(&[0, 1, 0, 1]).is_some());
    }

    #[test]
    fn estimate_uses_matching_submodel() {
        let space = Region::new(vec![8, 8], vec![1024, 1024]);
        let mut model = RoutineModel::new(
            Routine::Trsm,
            "test-machine",
            Locality::InCache,
            space.clone(),
        );
        model.insert_submodel(vec![0, 0, 0], constant_submodel(&space, 100.0));
        model.insert_submodel(vec![1, 0, 0], constant_submodel(&space, 200.0));
        assert_eq!(model.submodel_count(), 2);
        assert_eq!(model.total_samples(), 8);

        let left = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            100,
            100,
            1.0,
        );
        let right = Call::trsm(
            Side::Right,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            100,
            100,
            1.0,
        );
        assert_eq!(model.estimate(&left).unwrap().median, 100.0);
        assert_eq!(model.estimate(&right).unwrap().median, 200.0);
    }

    #[test]
    fn estimate_rejects_wrong_routine_and_missing_submodel() {
        let space = Region::new(vec![8, 8], vec![1024, 1024]);
        let mut model = RoutineModel::new(Routine::Trsm, "m", Locality::InCache, space.clone());
        model.insert_submodel(vec![0, 0, 0], constant_submodel(&space, 1.0));
        let gemm = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 0.0);
        assert!(matches!(
            model.estimate(&gemm),
            Err(ModelError::MissingSubmodel(_))
        ));
        let upper = Call::trsm(
            Side::Left,
            Uplo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            64,
            64,
            1.0,
        );
        assert!(model.estimate(&upper).is_err());
        assert!(model.submodel(&[0, 0, 0]).is_some());
        assert!(model.submodel(&[9, 9]).is_none());
    }

    #[test]
    fn estimate_clamps_out_of_space_sizes() {
        let space = Region::new(vec![8, 8], vec![256, 256]);
        let mut model = RoutineModel::new(Routine::Trsm, "m", Locality::InCache, space.clone());
        model.insert_submodel(vec![0, 0, 0], constant_submodel(&space, 42.0));
        // Sizes far outside the modelled space still produce an estimate.
        let big = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::NonUnit,
            4000,
            2,
            1.0,
        );
        let est = model.estimate(&big).unwrap();
        assert_eq!(est.median, 42.0);
    }
}
