//! Axis-aligned regions of the integer parameter space.

/// An axis-aligned box `[lo_d, hi_d]` (inclusive on both ends) in the integer
/// parameter space of a routine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    lo: Vec<usize>,
    hi: Vec<usize>,
}

impl Region {
    /// Creates a region; panics if the bounds have different arity or are
    /// inverted.
    pub fn new(lo: Vec<usize>, hi: Vec<usize>) -> Region {
        assert_eq!(lo.len(), hi.len(), "region bounds must have the same arity");
        assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "region bounds inverted: {lo:?}..{hi:?}"
        );
        Region { lo, hi }
    }

    /// A one-dimensional region.
    pub fn interval(lo: usize, hi: usize) -> Region {
        Region::new(vec![lo], vec![hi])
    }

    /// Dimensionality of the region.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner (inclusive).
    pub fn lo(&self) -> &[usize] {
        &self.lo
    }

    /// Upper corner (inclusive).
    pub fn hi(&self) -> &[usize] {
        &self.hi
    }

    /// Side length along dimension `d` (inclusive extent).
    // lint: allow(panic-free): callers pass d < dim(), the arity Region::new validated
    pub fn extent(&self, d: usize) -> usize {
        self.hi[d] - self.lo[d]
    }

    /// Smallest side extent across the dimensions.
    pub fn min_extent(&self) -> usize {
        (0..self.dim()).map(|d| self.extent(d)).min().unwrap_or(0)
    }

    /// Returns `true` if the point lies inside the region (inclusive bounds).
    // lint: allow(panic-free): the arity conjunct guarantees d < dim before the
    // bounds are read
    pub fn contains(&self, point: &[usize]) -> bool {
        point.len() == self.dim()
            && point
                .iter()
                .enumerate()
                .all(|(d, &p)| p >= self.lo[d] && p <= self.hi[d])
    }

    /// Returns `true` if `other` overlaps this region in every dimension.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.dim() == other.dim()
            && (0..self.dim()).all(|d| self.lo[d] <= other.hi[d] && other.lo[d] <= self.hi[d])
    }

    /// Returns `true` if `other` is entirely inside this region.
    pub fn contains_region(&self, other: &Region) -> bool {
        self.dim() == other.dim()
            && (0..self.dim()).all(|d| other.lo[d] >= self.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Grows the region along dimension `d` by `amount` in the positive
    /// (`forward = true`) or negative direction, clamping at `bound`.
    pub fn grown(&self, d: usize, amount: usize, forward: bool, bound: &Region) -> Region {
        let mut r = self.clone();
        if forward {
            r.hi[d] = (r.hi[d] + amount).min(bound.hi[d]);
        } else {
            r.lo[d] = r.lo[d].saturating_sub(amount).max(bound.lo[d]);
        }
        r
    }

    /// Splits the region in half along every dimension whose extent exceeds
    /// `min_extent`, producing up to `2^dim` sub-regions aligned to `step`.
    pub fn split(&self, min_extent: usize, step: usize) -> Vec<Region> {
        let dim = self.dim();
        // Determine, per dimension, the split point (if splittable).
        let mut cuts: Vec<Option<usize>> = Vec::with_capacity(dim);
        for d in 0..dim {
            if self.extent(d) >= min_extent.max(1) * 2 {
                let raw_mid = self.lo[d] + self.extent(d) / 2;
                let mid = if step > 1 {
                    (raw_mid / step) * step
                } else {
                    raw_mid
                };
                if mid > self.lo[d] && mid < self.hi[d] {
                    cuts.push(Some(mid));
                } else {
                    cuts.push(None);
                }
            } else {
                cuts.push(None);
            }
        }
        if cuts.iter().all(|c| c.is_none()) {
            return vec![self.clone()];
        }
        // Enumerate all combinations of (lower half / upper half) per cut dim.
        let mut result = vec![Region::new(self.lo.clone(), self.hi.clone())];
        for (d, cut) in cuts.iter().enumerate() {
            if let Some(mid) = *cut {
                let mut next = Vec::with_capacity(result.len() * 2);
                for r in result {
                    let mut low = r.clone();
                    low.hi[d] = mid;
                    let mut high = r.clone();
                    high.lo[d] = mid.min(r.hi[d]);
                    next.push(low);
                    next.push(high);
                }
                result = next;
            }
        }
        result
    }

    /// Generates a grid of sample points inside the region: `per_dim` points
    /// along every dimension (including both endpoints), snapped to multiples
    /// of `step` and deduplicated.
    ///
    /// The points come out in ascending lexicographic order: each axis is
    /// strictly increasing after snapping and deduplication, so the Cartesian
    /// product is emitted directly in sorted order by an odometer walk — no
    /// intermediate product stages, no post-sort, no post-dedup.
    pub fn sample_grid(&self, per_dim: usize, step: usize) -> Vec<Vec<usize>> {
        let mut points = Vec::new();
        self.sample_grid_into(per_dim, step, &mut points);
        points
    }

    /// [`Region::sample_grid`] into a reusable buffer: the outer vector and
    /// as many inner point vectors as it already holds are recycled, so a
    /// caller looping over many regions (the Modeler fits hundreds per
    /// submodel) allocates grid points only on its first iteration.
    pub fn sample_grid_into(&self, per_dim: usize, step: usize, out: &mut Vec<Vec<usize>>) {
        let dim = self.dim();
        let per_dim = per_dim.max(2);
        let mut axes: Vec<Vec<usize>> = Vec::with_capacity(dim);
        for d in 0..dim {
            let lo = self.lo[d];
            let hi = self.hi[d];
            let mut axis = Vec::with_capacity(per_dim);
            for i in 0..per_dim {
                let t = i as f64 / (per_dim - 1) as f64;
                let raw = lo as f64 + t * (hi - lo) as f64;
                let mut v = if step > 1 {
                    ((raw / step as f64).round() as usize) * step
                } else {
                    raw.round() as usize
                };
                v = v.clamp(lo, hi);
                axis.push(v);
            }
            // The snapped axis is non-decreasing, so adjacent dedup leaves it
            // strictly increasing.
            axis.dedup();
            axes.push(axis);
        }
        // Cartesian product via an odometer over the axis indices.
        let total: usize = axes.iter().map(|a| a.len()).product();
        out.truncate(total);
        out.reserve(total - out.len());
        let mut idx = vec![0usize; dim];
        for slot in 0..total {
            if slot < out.len() {
                out[slot].clear();
            } else {
                out.push(Vec::with_capacity(dim));
            }
            let p = &mut out[slot];
            for (axis, &i) in axes.iter().zip(&idx) {
                p.push(axis[i]);
            }
            // Advance the least-significant (last) dimension first.
            for d in (0..dim).rev() {
                idx[d] += 1;
                if idx[d] < axes[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// Normalises a point to `[0, 1]^dim` coordinates relative to this region.
    // lint: allow(panic-free): the arity assert is the documented contract and
    // bounds the indexing
    pub fn normalize(&self, point: &[usize]) -> Vec<f64> {
        assert_eq!(point.len(), self.dim());
        (0..self.dim())
            .map(|d| {
                let extent = self.extent(d);
                if extent == 0 {
                    0.0
                } else {
                    (point[d] as f64 - self.lo[d] as f64) / extent as f64
                }
            })
            .collect()
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| format!("[{l},{h}]"))
            .collect();
        write!(f, "{}", parts.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let r = Region::new(vec![8, 8], vec![1024, 512]);
        assert_eq!(r.dim(), 2);
        assert_eq!(r.extent(0), 1016);
        assert_eq!(r.extent(1), 504);
        assert_eq!(r.min_extent(), 504);
        assert!(r.contains(&[8, 8]));
        assert!(r.contains(&[1024, 512]));
        assert!(!r.contains(&[1025, 512]));
        assert!(!r.contains(&[8]));
        assert_eq!(Region::interval(1, 5).dim(), 1);
        assert_eq!(r.to_string(), "[8,1024]x[8,512]");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        let _ = Region::new(vec![10], vec![5]);
    }

    #[test]
    fn overlap_and_containment() {
        let a = Region::new(vec![0, 0], vec![10, 10]);
        let b = Region::new(vec![10, 10], vec![20, 20]);
        let c = Region::new(vec![11, 0], vec![20, 9]);
        assert!(a.overlaps(&b)); // share the corner point (10, 10)
        assert!(!a.overlaps(&c));
        assert!(a.contains_region(&Region::new(vec![2, 3], vec![4, 5])));
        assert!(!a.contains_region(&b));
    }

    #[test]
    fn grow_respects_bounds() {
        let space = Region::new(vec![8, 8], vec![1024, 1024]);
        let r = Region::new(vec![8, 8], vec![64, 64]);
        let g = r.grown(0, 64, true, &space);
        assert_eq!(g.hi(), &[128, 64]);
        let g = g.grown(1, 2000, true, &space);
        assert_eq!(g.hi(), &[128, 1024]);
        let h = r.grown(0, 100, false, &space);
        assert_eq!(h.lo(), &[8, 8]);
        let far = Region::new(vec![512, 512], vec![1024, 1024]);
        let h = far.grown(1, 256, false, &space);
        assert_eq!(h.lo(), &[512, 256]);
    }

    #[test]
    fn split_produces_cover() {
        let r = Region::new(vec![8, 8], vec![1024, 1024]);
        let parts = r.split(32, 8);
        assert_eq!(parts.len(), 4);
        // Every part is inside the parent and the union covers the corners.
        for p in &parts {
            assert!(r.contains_region(p));
        }
        assert!(parts.iter().any(|p| p.contains(&[8, 8])));
        assert!(parts.iter().any(|p| p.contains(&[1024, 1024])));
        assert!(parts.iter().any(|p| p.contains(&[8, 1024])));
        assert!(parts.iter().any(|p| p.contains(&[1024, 8])));
    }

    #[test]
    fn split_stops_at_min_extent() {
        let r = Region::new(vec![8], vec![40]);
        // extent 32 < 2 * 32, so no split possible
        let parts = r.split(32, 8);
        assert_eq!(parts, vec![r]);
    }

    #[test]
    fn sample_grid_endpoints_and_step() {
        let r = Region::new(vec![8, 8], vec![104, 104]);
        let grid = r.sample_grid(3, 8);
        assert!(grid.contains(&vec![8, 8]));
        assert!(grid.contains(&vec![104, 104]));
        assert!(grid.iter().all(|p| p.iter().all(|v| v % 8 == 0)));
        assert!(grid.iter().all(|p| r.contains(p)));
        assert_eq!(grid.len(), 9);
        // The odometer emits the product directly in sorted, deduplicated
        // order (the fit path relies on a stable point order).
        assert!(grid.windows(2).all(|w| w[0] < w[1]));
        // degenerate region: single point
        let single = Region::new(vec![16], vec![16]);
        assert_eq!(single.sample_grid(4, 8), vec![vec![16]]);
    }

    #[test]
    fn sample_grid_into_recycles_buffers() {
        let big = Region::new(vec![8, 8], vec![104, 104]);
        let small = Region::new(vec![8], vec![24]);
        let mut buf: Vec<Vec<usize>> = Vec::new();
        big.sample_grid_into(3, 8, &mut buf);
        assert_eq!(buf, big.sample_grid(3, 8));
        // Refill with a smaller grid: the buffer shrinks to the new size and
        // holds exactly the fresh points.
        small.sample_grid_into(3, 8, &mut buf);
        assert_eq!(buf, small.sample_grid(3, 8));
        big.sample_grid_into(3, 8, &mut buf);
        assert_eq!(buf, big.sample_grid(3, 8));
    }

    #[test]
    fn normalization() {
        let r = Region::new(vec![8, 8], vec![1008, 8]);
        let n = r.normalize(&[508, 8]);
        assert!((n[0] - 0.5).abs() < 1e-12);
        assert_eq!(n[1], 0.0);
        assert_eq!(r.normalize(&[8, 8])[0], 0.0);
        assert_eq!(r.normalize(&[1008, 8])[0], 1.0);
    }
}
