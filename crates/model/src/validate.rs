//! Publication gate: structural validation of repositories before serving.
//!
//! The serving layer must never adopt a repository that could make it serve a
//! non-finite prediction or lose coverage of a parameter space it previously
//! answered.  [`RepositoryValidator`] checks exactly the invariants evaluation
//! relies on — finite polynomial coefficients, non-empty models, regions
//! inside their submodel space, and a non-degenerate region cover — so
//! `ModelService::swap`/`merge` can reject a corrupt repository and keep
//! serving the last good generation instead.
//!
//! A NaN *fit error* is deliberately not rejected: fit errors are refinement
//! telemetry, not served values, and the ranking paths order NaN explicitly
//! (see [`error_order`](crate::error_order)).

use crate::{ModelError, ModelRepository, PiecewiseModel, Result, RoutineModel};

/// Validates repositories against the structural invariants serving relies on.
///
/// An **empty** repository is valid: swapping one in is the documented way to
/// clear a service, and an empty repository cannot serve anything non-finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepositoryValidator {
    /// Probe-grid resolution per dimension for the region-cover check
    /// (the same grid [`PiecewiseModel::covers_space`] samples).
    probe_per_dim: usize,
}

impl Default for RepositoryValidator {
    fn default() -> RepositoryValidator {
        RepositoryValidator { probe_per_dim: 5 }
    }
}

impl RepositoryValidator {
    /// A validator with the default probe resolution.
    pub fn new() -> RepositoryValidator {
        RepositoryValidator::default()
    }

    /// Overrides the cover-check probe resolution (points per dimension).
    pub fn with_probe_per_dim(probe_per_dim: usize) -> RepositoryValidator {
        RepositoryValidator {
            probe_per_dim: probe_per_dim.max(2),
        }
    }

    /// Validates a whole repository; the first violation is reported with the
    /// offending routine/machine/flags in the message.
    pub fn validate(&self, repository: &ModelRepository) -> Result<()> {
        for (_, model) in repository.iter() {
            self.validate_model(model)?;
        }
        Ok(())
    }

    /// Validates one routine model.
    pub fn validate_model(&self, model: &RoutineModel) -> Result<()> {
        let context = format!(
            "{} on {} ({:?})",
            model.routine.name(),
            model.machine_id,
            model.locality
        );
        if model.submodels.is_empty() {
            return Err(ModelError::Validation(format!(
                "{context}: routine model has no submodels"
            )));
        }
        for (flags, submodel) in &model.submodels {
            self.validate_submodel(submodel).map_err(|e| match e {
                ModelError::Validation(msg) => {
                    ModelError::Validation(format!("{context}, flags {flags:?}: {msg}"))
                }
                other => other,
            })?;
        }
        Ok(())
    }

    /// Validates one submodel (piecewise model).
    pub fn validate_submodel(&self, submodel: &PiecewiseModel) -> Result<()> {
        if submodel.regions.is_empty() {
            return Err(ModelError::Validation("submodel has no regions".into()));
        }
        for (i, region) in submodel.regions.iter().enumerate() {
            if !submodel.space.contains_region(&region.region) {
                return Err(ModelError::Validation(format!(
                    "region {i} {:?} escapes the submodel space {:?}",
                    region.region, submodel.space
                )));
            }
            for poly in region.poly.polynomials() {
                if poly.coefficients().iter().any(|c| !c.is_finite()) {
                    return Err(ModelError::Validation(format!(
                        "region {i} {:?} has non-finite polynomial coefficients",
                        region.region
                    )));
                }
            }
        }
        if !submodel.covers_space(self.probe_per_dim) {
            return Err(ModelError::Validation(format!(
                "degenerate region cover: a {}-per-dim probe grid of the space {:?} \
                 is not covered by the regions",
                self.probe_per_dim, submodel.space
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Polynomial, Region, RegionModel, VectorPolynomial};
    use dla_blas::Routine;
    use dla_machine::Locality;
    use dla_mat::stats::Summary;

    fn fitted_region(lo: Vec<usize>, hi: Vec<usize>) -> RegionModel {
        let region = Region::new(lo, hi);
        let samples: Vec<(Vec<usize>, Summary)> = region
            .sample_grid(3, 1)
            .into_iter()
            .map(|p| {
                let v = p.iter().sum::<usize>() as f64;
                (p, Summary::exact(v))
            })
            .collect();
        RegionModel::fit(region, &samples, 1).unwrap()
    }

    fn model_with(submodel: PiecewiseModel) -> RoutineModel {
        let mut model = RoutineModel::new(
            Routine::Gemm,
            "machine-a",
            Locality::InCache,
            submodel.space.clone(),
        );
        model.insert_submodel(vec![0, 0], submodel);
        model
    }

    #[test]
    fn valid_model_passes() {
        let space = Region::new(vec![8, 8], vec![64, 64]);
        let sub = PiecewiseModel::new(space, vec![fitted_region(vec![8, 8], vec![64, 64])], 9);
        let mut repo = ModelRepository::new();
        repo.insert(model_with(sub));
        assert!(RepositoryValidator::new().validate(&repo).is_ok());
    }

    #[test]
    fn empty_repository_is_valid() {
        assert!(RepositoryValidator::new()
            .validate(&ModelRepository::new())
            .is_ok());
    }

    #[test]
    fn empty_routine_model_is_rejected() {
        let mut repo = ModelRepository::new();
        repo.insert(RoutineModel::new(
            Routine::Gemm,
            "machine-a",
            Locality::InCache,
            Region::new(vec![8, 8], vec![64, 64]),
        ));
        let err = RepositoryValidator::new().validate(&repo).unwrap_err();
        assert!(matches!(err, ModelError::Validation(ref m) if m.contains("no submodels")));
    }

    #[test]
    fn empty_submodel_is_rejected() {
        let space = Region::new(vec![8, 8], vec![64, 64]);
        let sub = PiecewiseModel::new(space, vec![], 0);
        let mut repo = ModelRepository::new();
        repo.insert(model_with(sub));
        let err = RepositoryValidator::new().validate(&repo).unwrap_err();
        assert!(matches!(err, ModelError::Validation(ref m) if m.contains("no regions")));
    }

    #[test]
    fn non_finite_coefficients_are_rejected() {
        let space = Region::new(vec![8, 8], vec![64, 64]);
        let mut region = fitted_region(vec![8, 8], vec![64, 64]);
        let dim = region.poly.polynomials()[0].dim();
        let bad = Polynomial::new(dim, vec![vec![0; dim]], vec![f64::NAN]).unwrap();
        region.poly = VectorPolynomial::new(vec![bad; 5]).unwrap();
        let sub = PiecewiseModel::new(space, vec![region], 9);
        let mut repo = ModelRepository::new();
        repo.insert(model_with(sub));
        let err = RepositoryValidator::new().validate(&repo).unwrap_err();
        assert!(matches!(err, ModelError::Validation(ref m) if m.contains("non-finite")));
    }

    #[test]
    fn region_escaping_the_space_is_rejected() {
        let space = Region::new(vec![8, 8], vec![64, 64]);
        let sub = PiecewiseModel::new(space, vec![fitted_region(vec![8, 8], vec![128, 128])], 9);
        let mut repo = ModelRepository::new();
        repo.insert(model_with(sub));
        let err = RepositoryValidator::new().validate(&repo).unwrap_err();
        assert!(matches!(err, ModelError::Validation(ref m) if m.contains("escapes")));
    }

    #[test]
    fn degenerate_cover_is_rejected() {
        // One region covering only a corner of the space: probe grid misses.
        let space = Region::new(vec![8, 8], vec![512, 512]);
        let sub = PiecewiseModel::new(space, vec![fitted_region(vec![8, 8], vec![16, 16])], 9);
        let mut repo = ModelRepository::new();
        repo.insert(model_with(sub));
        let err = RepositoryValidator::new().validate(&repo).unwrap_err();
        assert!(matches!(err, ModelError::Validation(ref m) if m.contains("degenerate")));
    }

    #[test]
    fn nan_fit_error_is_tolerated() {
        // Fit errors are telemetry, not served values; serving must keep
        // accepting a model whose error is NaN (ranked explicitly elsewhere).
        let space = Region::new(vec![8, 8], vec![64, 64]);
        let mut region = fitted_region(vec![8, 8], vec![64, 64]);
        region.error = f64::NAN;
        let sub = PiecewiseModel::new(space, vec![region], 9);
        let mut repo = ModelRepository::new();
        repo.insert(model_with(sub));
        assert!(RepositoryValidator::new().validate(&repo).is_ok());
    }
}
