//! The compiled evaluation engine: indexed region lookup and fused,
//! zero-allocation polynomial evaluation.
//!
//! [`PiecewiseModel::eval`] is the *reference* implementation: it scans every
//! region linearly, heap-allocates the normalised coordinates per call, and
//! re-computes monomial powers for each of the five quantity polynomials.
//! That is fine for one-off queries, but rankings and block-size sweeps
//! evaluate models thousands of times per request, so the cold path itself
//! has to be fast.  This module compiles a repository **once** — at build or
//! hot-swap time — into a form that answers point queries without allocating:
//!
//! * **Fused polynomials** ([`CompiledVectorPolynomial`]): the five quantity
//!   polynomials of a [`VectorPolynomial`] share one monomial plan; each
//!   monomial is computed once per point from per-dimension power ladders
//!   (no `powi`) and feeds five fused dot products against an SoA
//!   coefficient matrix.
//! * **Region index** ([`CompiledPiecewise`]): refinement regions stem from
//!   axis-aligned splits, so their boundaries induce per-dimension sorted cut
//!   arrays.  A query point maps to a grid cell by binary search; every cell
//!   precomputes its best (minimum-error) containing region, and uncovered
//!   cells precompute the candidate set for the nearest-region fallback.
//! * **Zero-allocation path**: normalised coordinates live in fixed scratch
//!   ([`MAX_DIM`]), submodel lookup uses the fixed-size
//!   [`FlagKey`](crate::FlagKey), and [`CompiledRepository::resolve`]
//!   pre-resolves machine/locality into a [`RoutineTable`] so the per-call
//!   path performs no hashing and no string comparison.
//!
//! Shapes the fast path cannot represent (dimension above [`MAX_DIM`],
//! exponents beyond the power ladder, oversized cell tables) transparently
//! fall back to the reference implementation, so compiled evaluation is
//! always *available*, merely not always accelerated.  Equivalence between
//! the two implementations is enforced by property tests
//! (`crates/core/tests/eval_equivalence.rs`).

// The evaluators below are index-heavy numeric loops over fixed-size scratch
// arrays; iterator rewrites obscure the per-dimension structure (same policy
// as the kernel crates).
#![allow(clippy::needless_range_loop)]

use std::cmp::Ordering;
use std::sync::{Arc, OnceLock};

use dla_blas::{Call, Routine};
use dla_machine::Locality;
use dla_mat::stats::Summary;

use crate::piecewise::error_order;
use crate::routine_model::{submodel_key_fixed, FlagKey};
use crate::{
    ModelError, ModelKey, ModelRepository, PiecewiseModel, Region, Result, RoutineModel,
    VectorPolynomial,
};

/// Dimensionality bound of the zero-allocation scratch buffers (the modelled
/// routines have at most 3 integer parameters).
pub const MAX_DIM: usize = 4;

/// Largest monomial exponent the power ladder supports; polynomials with
/// higher exponents fall back to the reference evaluator.
pub(crate) const MAX_EXP: usize = 7;

/// Points per micro-tile of the batch evaluator: small enough that the five
/// accumulator lanes live in registers across the whole monomial plan and the
/// power-ladder scratch (a few hundred bytes) never leaves L1, while every
/// inner loop still runs over `TILE` contiguous doubles — the shape
/// auto-vectorizers want.
const TILE: usize = 8;

/// Upper bound on the size of a cell table; larger index grids degrade to an
/// in-order (but still allocation-free) region scan.
const CELL_CAP: usize = 1 << 18;

/// A flat, structure-of-arrays batch of integer query points: one contiguous
/// `[usize]` column per dimension.
///
/// This is the first-class input of the batch evaluation hot path
/// ([`CompiledPiecewise::eval_batch`]): the kernel reads whole columns with
/// unit stride, normalises them into per-tile `f64` lanes, and evaluates the
/// shared power-ladder basis across the block in auto-vectorizable loops.
/// Row-major callers (`&[Vec<usize>]`) convert once through
/// [`BatchPoints::from_rows`] or the [`CompiledPiecewise::eval_batch_rows`]
/// adapter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchPoints {
    /// One column per dimension; all columns share the same length.
    columns: Vec<Vec<usize>>,
    len: usize,
}

impl BatchPoints {
    /// An empty batch of `dim`-dimensional points.
    pub fn new(dim: usize) -> BatchPoints {
        BatchPoints {
            columns: vec![Vec::new(); dim],
            len: 0,
        }
    }

    /// An empty batch with room for `capacity` points per column.
    pub fn with_capacity(dim: usize, capacity: usize) -> BatchPoints {
        BatchPoints {
            columns: (0..dim).map(|_| Vec::with_capacity(capacity)).collect(),
            len: 0,
        }
    }

    /// Converts a row-major point list into columns.  Every row must have
    /// arity `dim`.
    pub fn from_rows(dim: usize, points: &[Vec<usize>]) -> Result<BatchPoints> {
        let mut batch = BatchPoints::with_capacity(dim, points.len());
        for point in points {
            if point.len() != dim {
                return Err(ModelError::OutOfDomain(format!(
                    "point arity {} does not match batch dimension {dim}",
                    point.len()
                )));
            }
            batch.push(point);
        }
        Ok(batch)
    }

    /// Appends one point.
    ///
    /// # Panics
    ///
    /// Panics when `point.len()` differs from the batch dimension (the same
    /// contract as [`Region::new`]'s arity check).
    // lint: allow(panic-free): the arity assert is the documented contract;
    // serving batches are built with the model's dimension
    pub fn push(&mut self, point: &[usize]) {
        assert_eq!(
            point.len(),
            self.columns.len(),
            "point arity must match the batch dimension"
        );
        for (column, &value) in self.columns.iter_mut().zip(point) {
            column.push(value);
        }
        self.len += 1;
    }

    /// Number of dimensions (columns).
    pub fn dim(&self) -> usize {
        self.columns.len()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all points, keeping the column allocations for reuse.
    pub fn clear(&mut self) {
        for column in &mut self.columns {
            column.clear();
        }
        self.len = 0;
    }

    /// The contiguous column of dimension `d`.
    pub fn column(&self, d: usize) -> &[usize] {
        &self.columns[d]
    }

    /// Copies point `i` into fixed scratch (dimensions above [`MAX_DIM`] are
    /// ignored; callers reject such batches before reading points).
    #[inline]
    pub(crate) fn read_point(&self, i: usize, out: &mut [usize; MAX_DIM]) {
        for (d, column) in self.columns.iter().take(MAX_DIM).enumerate() {
            out[d] = column[i];
        }
    }
}

/// The five quantity polynomials of a [`VectorPolynomial`] compiled into one
/// shared monomial plan with an SoA coefficient matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledVectorPolynomial {
    dim: usize,
    term_count: usize,
    /// Term-major exponent matrix, `term_count * dim` entries.
    exponents: Vec<u8>,
    /// Term-major coefficient matrix, `term_count * 5` entries; column `q`
    /// holds the coefficient of quantity `q` (zero where a quantity's
    /// polynomial lacks the term).
    coefficients: Vec<f64>,
    /// Per-dimension largest exponent (power-ladder length).
    max_exp: [u8; MAX_DIM],
}

impl CompiledVectorPolynomial {
    /// Compiles a vector polynomial; `None` when the shape does not fit the
    /// fast path (wrong arity, dimension above [`MAX_DIM`], exponent above
    /// the ladder bound).
    pub fn compile(vp: &VectorPolynomial, dim: usize) -> Option<CompiledVectorPolynomial> {
        if dim == 0 || dim > MAX_DIM {
            return None;
        }
        // The shared plan: union of the five exponent lists, first-seen order
        // (the polynomials of one fit share the same basis, so the common
        // case is plan == basis of the first polynomial).
        let mut plan: Vec<&[u32]> = Vec::new();
        for poly in vp.polynomials() {
            if poly.dim() != dim {
                return None;
            }
            for e in poly.exponents() {
                if e.iter().any(|&x| x as usize > MAX_EXP) {
                    return None;
                }
                if !plan.contains(&e.as_slice()) {
                    plan.push(e);
                }
            }
        }
        let term_count = plan.len();
        let mut exponents = Vec::with_capacity(term_count * dim);
        let mut max_exp = [0u8; MAX_DIM];
        for e in &plan {
            for (d, &x) in e.iter().enumerate() {
                exponents.push(x as u8);
                max_exp[d] = max_exp[d].max(x as u8);
            }
        }
        let mut coefficients = vec![0.0; term_count * 5];
        for (q, poly) in vp.polynomials().iter().enumerate() {
            for (e, &c) in poly.exponents().iter().zip(poly.coefficients()) {
                let t = plan
                    .iter()
                    .position(|p| *p == e.as_slice())
                    // lint: allow(unwrap): the plan was built from the union of these exact exponent tuples
                    .expect("every exponent tuple is in the plan");
                // `+=`, not `=`: duplicate tuples within one polynomial sum,
                // matching the reference evaluator.
                coefficients[t * 5 + q] += c;
            }
        }
        Some(CompiledVectorPolynomial {
            dim,
            term_count,
            exponents,
            coefficients,
            max_exp,
        })
    }

    /// Number of terms in the shared monomial plan.
    pub fn term_count(&self) -> usize {
        self.term_count
    }

    /// The arity of the compiled plan.
    pub(crate) fn dim(&self) -> usize {
        self.dim
    }

    /// The term-major exponent matrix (`term_count * dim` bytes) — the exact
    /// bytes the binary repository format serialises.
    pub(crate) fn exponent_bytes(&self) -> &[u8] {
        &self.exponents
    }

    /// The term-major SoA coefficient matrix (`term_count * 5` doubles) — the
    /// exact doubles the binary repository format serialises.
    pub(crate) fn coefficient_matrix(&self) -> &[f64] {
        &self.coefficients
    }

    /// Reassembles a compiled polynomial from its serialised parts,
    /// revalidating every invariant the evaluator relies on (the binary
    /// loader must never panic on corrupt-but-well-framed input).
    pub(crate) fn from_raw_parts(
        dim: usize,
        exponents: Vec<u8>,
        coefficients: Vec<f64>,
    ) -> Result<CompiledVectorPolynomial> {
        if dim == 0 || dim > MAX_DIM {
            return Err(ModelError::Parse(format!(
                "binary repository: compiled polynomial dimension {dim} outside 1..={MAX_DIM}"
            )));
        }
        if !exponents.len().is_multiple_of(dim) {
            return Err(ModelError::Parse(format!(
                "binary repository: exponent matrix length {} is not a multiple of dim {dim}",
                exponents.len()
            )));
        }
        let term_count = exponents.len() / dim;
        if coefficients.len() != term_count * 5 {
            return Err(ModelError::Parse(format!(
                "binary repository: coefficient matrix length {} does not match {term_count} terms",
                coefficients.len()
            )));
        }
        let mut max_exp = [0u8; MAX_DIM];
        for term in exponents.chunks_exact(dim) {
            for (d, &e) in term.iter().enumerate() {
                if e as usize > MAX_EXP {
                    return Err(ModelError::Parse(format!(
                        "binary repository: exponent {e} exceeds the power-ladder bound {MAX_EXP}"
                    )));
                }
                max_exp[d] = max_exp[d].max(e);
            }
        }
        Ok(CompiledVectorPolynomial {
            dim,
            term_count,
            exponents,
            coefficients,
            max_exp,
        })
    }

    /// Evaluates all five quantities at a normalised point, with the same
    /// non-negativity clamp and NaN preservation as
    /// [`VectorPolynomial::eval`].
    // lint: allow(panic-free): dim and max_exp are clamped to MAX_DIM/MAX_EXP at
    // compile time, and the exponent/coefficient slices are sized term_count*dim
    // and term_count*5 by construction
    #[inline]
    pub fn eval(&self, x: &[f64; MAX_DIM]) -> [f64; 5] {
        // lint: hot-path begin
        // Power ladders: pows[d][e] = x[d]^e, built with one multiply per
        // entry instead of a `powi` per term and quantity.
        let mut pows = [[1.0f64; MAX_EXP + 1]; MAX_DIM];
        for d in 0..self.dim {
            let mut p = 1.0;
            for e in 1..=self.max_exp[d] as usize {
                p *= x[d];
                pows[d][e] = p;
            }
        }
        let mut acc = [0.0f64; 5];
        for t in 0..self.term_count {
            let exps = &self.exponents[t * self.dim..(t + 1) * self.dim];
            let mut basis = 1.0;
            for (d, &e) in exps.iter().enumerate() {
                basis *= pows[d][e as usize];
            }
            let coeffs = &self.coefficients[t * 5..t * 5 + 5];
            for (a, &c) in acc.iter_mut().zip(coeffs) {
                *a += c * basis;
            }
        }
        for v in &mut acc {
            if !v.is_nan() {
                *v = v.max(0.0);
            }
        }
        // lint: hot-path end
        acc
    }
}

/// One region with precomputed bounds and its compiled polynomial.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompiledRegion {
    lo: [usize; MAX_DIM],
    hi: [usize; MAX_DIM],
    lo_f: [f64; MAX_DIM],
    hi_f: [f64; MAX_DIM],
    extent_f: [f64; MAX_DIM],
    error: f64,
    pub(crate) poly: CompiledVectorPolynomial,
}

impl CompiledRegion {
    pub(crate) fn compile(
        region: &Region,
        poly: CompiledVectorPolynomial,
        error: f64,
    ) -> CompiledRegion {
        let dim = region.dim();
        let mut r = CompiledRegion {
            lo: [0; MAX_DIM],
            hi: [0; MAX_DIM],
            lo_f: [0.0; MAX_DIM],
            hi_f: [0.0; MAX_DIM],
            extent_f: [0.0; MAX_DIM],
            error,
            poly,
        };
        for d in 0..dim {
            r.lo[d] = region.lo()[d];
            r.hi[d] = region.hi()[d];
            r.lo_f[d] = region.lo()[d] as f64;
            r.hi_f[d] = region.hi()[d] as f64;
            r.extent_f[d] = region.extent(d) as f64;
        }
        r
    }

    // lint: allow(panic-free): d < dim <= MAX_DIM bounds the fixed arrays, and
    // point arity is validated at the public entry
    #[inline]
    fn contains(&self, dim: usize, point: &[usize]) -> bool {
        (0..dim).all(|d| point[d] >= self.lo[d] && point[d] <= self.hi[d])
    }

    /// Same arithmetic as the reference `region_distance`.
    // lint: allow(panic-free): d < dim <= MAX_DIM bounds the fixed arrays, and
    // point arity is validated at the public entry
    #[inline]
    fn distance(&self, dim: usize, point: &[usize]) -> f64 {
        let mut acc = 0.0;
        for d in 0..dim {
            let p = point[d] as f64;
            let dd = if p < self.lo_f[d] {
                self.lo_f[d] - p
            } else if p > self.hi_f[d] {
                p - self.hi_f[d]
            } else {
                0.0
            };
            acc += dd * dd;
        }
        acc.sqrt()
    }

    /// Normalises into fixed scratch (same arithmetic as
    /// [`Region::normalize`]) and evaluates the fused polynomial.
    // lint: allow(panic-free): the scratch array is MAX_DIM-sized, d < dim <=
    // MAX_DIM, and point arity is validated at the public entry
    #[inline]
    fn eval(&self, dim: usize, point: &[usize]) -> Summary {
        // lint: hot-path begin
        let mut x = [0.0f64; MAX_DIM];
        for d in 0..dim {
            x[d] = if self.extent_f[d] == 0.0 {
                0.0
            } else {
                (point[d] as f64 - self.lo_f[d]) / self.extent_f[d]
            };
        }
        let summary = Summary::from_quantities(&self.poly.eval(&x));
        // lint: hot-path end
        summary
    }
}

/// Where a point resolved during location: a concrete region, a cell's
/// precomputed fallback candidate set, or the full nearest-region scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PointLoc {
    /// Covered by the region at this index (source region order).
    Region(usize),
    /// Uncovered but inside the index: nearest among this fallback set.
    NearestAmong(usize),
    /// Outside the indexed range (or unindexed and uncovered): nearest over
    /// all regions.
    NearestAll,
}

/// A [`PiecewiseModel`] compiled into an indexed, allocation-free evaluator.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPiecewise {
    dim: usize,
    regions: Vec<CompiledRegion>,
    /// Per-dimension sorted cut coordinates; cell `i` along dimension `d`
    /// spans `[cuts[d][i], cuts[d][i + 1] - 1]`.
    cuts: Vec<Vec<usize>>,
    /// Row-major cell table.  A value `v < regions.len()` is the cell's
    /// precomputed best region; `v >= regions.len()` indexes
    /// `fallbacks[v - regions.len()]`, the candidate set of the
    /// nearest-region fallback for an uncovered cell.
    cells: Vec<u32>,
    strides: [usize; MAX_DIM],
    /// Candidate region sets for uncovered cells.
    fallbacks: Vec<Vec<u32>>,
    /// `false` when the cell table would exceed [`CELL_CAP`]: point location
    /// then degrades to an in-order region scan (still allocation-free).
    indexed: bool,
}

impl CompiledPiecewise {
    /// Compiles a piecewise model; `None` when the shape does not fit the
    /// fast path (no regions, dimension 0 or above [`MAX_DIM`], arity
    /// mismatches, exponents beyond the power ladder).
    pub fn compile(model: &PiecewiseModel) -> Option<CompiledPiecewise> {
        let dim = model.space.dim();
        if dim == 0 || dim > MAX_DIM || model.regions.is_empty() {
            return None;
        }
        let mut regions = Vec::with_capacity(model.regions.len());
        for rm in &model.regions {
            if rm.region.dim() != dim {
                return None;
            }
            let poly = CompiledVectorPolynomial::compile(&rm.poly, dim)?;
            regions.push(CompiledRegion::compile(&rm.region, poly, rm.error));
        }
        // The cut arrays: every region boundary starts (lo) or ends (hi + 1)
        // a cell, so containment is uniform within a cell.
        let mut cuts: Vec<Vec<usize>> = vec![Vec::new(); dim];
        for rm in &model.regions {
            for d in 0..dim {
                cuts[d].push(rm.region.lo()[d]);
                cuts[d].push(rm.region.hi()[d].checked_add(1)?);
            }
        }
        for c in &mut cuts {
            c.sort_unstable();
            c.dedup();
        }
        let cells_per_dim: Vec<usize> = cuts.iter().map(|c| c.len() - 1).collect();
        // Checked product: a degenerate model with enough region boundaries
        // could overflow, which must degrade to the scan path, not wrap.
        let total_cells = cells_per_dim
            .iter()
            .try_fold(1usize, |acc, &c| acc.checked_mul(c));
        let indexed = matches!(total_cells, Some(t) if (1..=CELL_CAP).contains(&t));

        let mut compiled = CompiledPiecewise {
            dim,
            regions,
            cuts,
            cells: Vec::new(),
            strides: [0; MAX_DIM],
            fallbacks: Vec::new(),
            indexed,
        };
        if !indexed {
            return Some(compiled);
        }
        // lint: allow(unwrap): the indexed flag is only set together with a valid cell count
        let total_cells = total_cells.expect("indexed implies a valid cell count");
        // Row-major strides: last dimension contiguous.
        let mut stride = 1;
        for d in (0..dim).rev() {
            compiled.strides[d] = stride;
            stride *= cells_per_dim[d];
        }
        // Walk every cell (odometer over per-dimension cell indices) and
        // precompute its winner or its fallback candidate set.
        let mut cells = vec![0u32; total_cells];
        let mut idx = [0usize; MAX_DIM];
        for cell in cells.iter_mut() {
            let mut rep = [0usize; MAX_DIM];
            let mut cell_hi = [0usize; MAX_DIM];
            for d in 0..dim {
                rep[d] = compiled.cuts[d][idx[d]];
                cell_hi[d] = compiled.cuts[d][idx[d] + 1] - 1;
            }
            *cell = match best_containing(&compiled.regions, dim, &rep[..dim]) {
                Some(winner) => winner as u32,
                None => {
                    let candidates = fallback_candidates(&compiled.regions, dim, &rep, &cell_hi);
                    compiled.fallbacks.push(candidates);
                    (compiled.regions.len() + compiled.fallbacks.len() - 1) as u32
                }
            };
            // Advance the odometer (last dimension fastest, matching the
            // row-major strides).
            for d in (0..dim).rev() {
                idx[d] += 1;
                if idx[d] < cells_per_dim[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        compiled.cells = cells;
        Some(compiled)
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` when point location uses the precomputed cell table
    /// (as opposed to the scan fallback for oversized grids).
    pub fn is_indexed(&self) -> bool {
        self.indexed
    }

    /// Number of cells in the index (0 when not indexed).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Point dimensionality this model evaluates.
    pub fn dim(&self) -> usize {
        self.dim
    }

    pub(crate) fn regions(&self) -> &[CompiledRegion] {
        &self.regions
    }

    pub(crate) fn cuts(&self) -> &[Vec<usize>] {
        &self.cuts
    }

    pub(crate) fn cells(&self) -> &[u32] {
        &self.cells
    }

    pub(crate) fn fallbacks(&self) -> &[Vec<u32>] {
        &self.fallbacks
    }

    /// Rebuilds a compiled piecewise model from serialized sections,
    /// re-validating every invariant [`compile`](CompiledPiecewise::compile)
    /// establishes so corrupt inputs surface as errors, never panics.
    pub(crate) fn from_raw_parts(
        dim: usize,
        regions: Vec<CompiledRegion>,
        cuts: Vec<Vec<usize>>,
        cells: Vec<u32>,
        fallbacks: Vec<Vec<u32>>,
        indexed: bool,
    ) -> Result<CompiledPiecewise> {
        let bad = |msg: String| Err(ModelError::Parse(format!("binary repository: {msg}")));
        if dim == 0 || dim > MAX_DIM {
            return bad(format!("piecewise dimension {dim} out of range"));
        }
        if regions.is_empty() {
            return bad("piecewise model with no regions".to_string());
        }
        // Cut arrays exist in both modes (compile() builds them before the
        // index-size decision); the cell table only in indexed mode.
        if cuts.len() != dim {
            return bad(format!("expected {dim} cut arrays, found {}", cuts.len()));
        }
        let mut total = 1usize;
        for c in &cuts {
            if c.len() < 2 || c.windows(2).any(|w| w[0] >= w[1]) {
                return bad("cut array not strictly ascending".to_string());
            }
            total = match total.checked_mul(c.len() - 1) {
                Some(t) => t,
                None => {
                    if indexed {
                        return bad("cell table size overflows".to_string());
                    }
                    // Oversized grids are exactly why the model degraded to
                    // the scan path; the product is unused there.
                    usize::MAX
                }
            };
        }
        let mut strides = [0usize; MAX_DIM];
        if indexed {
            if total != cells.len() {
                return bad(format!(
                    "cell table length {} does not match cut grid ({total} cells)",
                    cells.len()
                ));
            }
            let limit = regions.len() + fallbacks.len();
            if cells.iter().any(|&v| (v as usize) >= limit) {
                return bad("cell entry out of range".to_string());
            }
            if fallbacks
                .iter()
                .any(|f| f.iter().any(|&r| (r as usize) >= regions.len()))
            {
                return bad("fallback candidate out of range".to_string());
            }
            let mut stride = 1usize;
            for d in (0..dim).rev() {
                strides[d] = stride;
                stride *= cuts[d].len() - 1;
            }
        } else if !cells.is_empty() || !fallbacks.is_empty() {
            return bad("unindexed model carries a cell table".to_string());
        }
        Ok(CompiledPiecewise {
            dim,
            regions,
            cuts,
            cells,
            strides,
            fallbacks,
            indexed,
        })
    }

    /// Evaluates the compiled model at a raw integer point — the fast,
    /// allocation-free equivalent of [`PiecewiseModel::eval`].
    pub fn eval(&self, point: &[usize]) -> Result<Summary> {
        self.eval_traced(point).map(|(summary, _)| summary)
    }

    /// [`CompiledPiecewise::eval`], additionally reporting which region
    /// answered (its index in compiled — i.e. source — region order).  The
    /// serving layer's telemetry records this index per query; tracing adds
    /// no work beyond returning the index the evaluator already holds.
    pub fn eval_traced(&self, point: &[usize]) -> Result<(Summary, u32)> {
        if point.len() != self.dim {
            // lint: allow(hot-path): arity-error branch, never taken by in-contract callers
            return Err(ModelError::OutOfDomain(format!(
                "point arity {} does not match model dimension {}",
                point.len(),
                self.dim
            )));
        }
        Ok(match self.locate(point) {
            // lint: allow(panic-free): locate only returns indices into self.regions
            PointLoc::Region(r) => (self.regions[r].eval(self.dim, point), r as u32),
            // lint: allow(panic-free): locate only returns indices into self.fallbacks
            PointLoc::NearestAmong(f) => self.nearest(point, Some(&self.fallbacks[f])),
            PointLoc::NearestAll => self.nearest(point, None),
        })
    }

    /// Locates the region that answers `point`: the cell table's precomputed
    /// winner on the indexed path, the in-order scan otherwise, or a
    /// nearest-region fallback directive for uncovered points.
    // lint: allow(panic-free): point arity is validated by eval_traced, d < dim
    // bounds the cut/stride tables, and the cell index stays inside the table
    // because every dimension's contribution is clamped by partition_point
    #[inline]
    fn locate(&self, point: &[usize]) -> PointLoc {
        // lint: hot-path begin
        if !self.indexed {
            return match best_containing(&self.regions, self.dim, point) {
                Some(best) => PointLoc::Region(best),
                None => PointLoc::NearestAll,
            };
        }
        let mut cell = 0usize;
        for d in 0..self.dim {
            let cuts = &self.cuts[d];
            let p = point[d];
            // lint: allow(unwrap): the index is only built for models with at least one region, so cuts are non-empty
            if p < cuts[0] || p >= *cuts.last().expect("non-empty cuts") {
                // Outside the indexed range in this dimension, hence outside
                // every region: exact nearest-region fallback.
                return PointLoc::NearestAll;
            }
            cell += (cuts.partition_point(|&b| b <= p) - 1) * self.strides[d];
        }
        let v = self.cells[cell] as usize;
        // lint: hot-path end
        if v < self.regions.len() {
            PointLoc::Region(v)
        } else {
            PointLoc::NearestAmong(v - self.regions.len())
        }
    }

    /// Evaluates the model at every point of a batch through the SoA block
    /// kernel (one output allocation, zero allocations per point; results are
    /// bit-identical to pointwise [`eval`](CompiledPiecewise::eval)).
    pub fn eval_batch(&self, points: &BatchPoints) -> Result<Vec<Summary>> {
        let mut out = Vec::with_capacity(points.len());
        self.eval_batch_into(points, &mut out)?;
        Ok(out)
    }

    /// Row-major adapter for [`eval_batch`](CompiledPiecewise::eval_batch):
    /// converts `&[Vec<usize>]` callers once and runs the same tile kernel.
    pub fn eval_batch_rows(&self, points: &[Vec<usize>]) -> Result<Vec<Summary>> {
        self.eval_batch(&BatchPoints::from_rows(self.dim, points)?)
    }

    /// Streaming batch evaluation into a caller-owned output slab (cleared
    /// and refilled), so sweeps can reuse one allocation across batches.
    pub fn eval_batch_into(&self, points: &BatchPoints, out: &mut Vec<Summary>) -> Result<()> {
        self.eval_batch_traced_into(points, out, None)
    }

    /// [`eval_batch_into`](CompiledPiecewise::eval_batch_into), additionally
    /// reporting the answering region index per point (source region order)
    /// when `regions` is given — the batch counterpart of
    /// [`eval_traced`](CompiledPiecewise::eval_traced) that the serving
    /// layer's telemetry consumes.
    pub fn eval_batch_traced_into(
        &self,
        points: &BatchPoints,
        out: &mut Vec<Summary>,
        mut regions: Option<&mut Vec<u32>>,
    ) -> Result<()> {
        if points.dim() != self.dim {
            return Err(ModelError::OutOfDomain(format!(
                "point arity {} does not match model dimension {}",
                points.dim(),
                self.dim
            )));
        }
        out.clear();
        if let Some(r) = regions.as_deref_mut() {
            r.clear();
        }
        let n = points.len();
        if n == 0 {
            return Ok(());
        }
        let mut scratch = [0usize; MAX_DIM];
        if n <= 2 {
            // Tiny batches: the scalar path beats the batch machinery's
            // fixed costs (slab allocation, grouping), and results are
            // identical either way.
            for i in 0..n {
                points.read_point(i, &mut scratch);
                let (summary, region) = self.eval_traced(&scratch[..self.dim])?;
                out.push(summary);
                if let Some(regs) = regions.as_deref_mut() {
                    regs.push(region);
                }
            }
            return Ok(());
        }
        if n > u32::MAX as usize {
            return Err(ModelError::OutOfDomain(format!(
                "batch of {n} points exceeds the supported maximum {}",
                u32::MAX
            )));
        }
        // Results are scattered back by point index, so grouping below can
        // reorder evaluation freely without changing the output order.
        out.resize(n, Summary::from_quantities(&[0.0; 5]));
        if let Some(r) = regions.as_deref_mut() {
            r.resize(n, 0);
        }
        // Locate pass: record every covered point's answering region and
        // resolve uncovered points through the exact scalar fallback right
        // away.  The per-region counts feed a counting sort below —
        // O(n + regions) instead of a comparison sort, and stable in point
        // order, so grouping is fully deterministic.
        const UNCOVERED: u32 = u32::MAX;
        let mut locs: Vec<u32> = Vec::with_capacity(n);
        let mut counts = vec![0u32; self.regions.len()];
        for i in 0..n {
            points.read_point(i, &mut scratch);
            match self.locate(&scratch[..self.dim]) {
                PointLoc::Region(r) => {
                    counts[r] += 1;
                    locs.push(r as u32);
                }
                loc => {
                    let (summary, region) = match loc {
                        PointLoc::NearestAmong(f) => {
                            self.nearest(&scratch[..self.dim], Some(&self.fallbacks[f]))
                        }
                        _ => self.nearest(&scratch[..self.dim], None),
                    };
                    out[i] = summary;
                    if let Some(regs) = regions.as_deref_mut() {
                        regs[i] = region;
                    }
                    locs.push(UNCOVERED);
                }
            }
        }
        // Counting sort: exclusive prefix sum over the region counts, then
        // one placement pass scatters each covered point's index into its
        // region's slice of `order`.
        let mut cursor: Vec<u32> = Vec::with_capacity(counts.len());
        let mut covered = 0u32;
        for &c in &counts {
            cursor.push(covered);
            covered += c;
        }
        let mut order = vec![0u32; covered as usize];
        for (i, &r) in locs.iter().enumerate() {
            if r != UNCOVERED {
                order[cursor[r as usize] as usize] = i as u32;
                cursor[r as usize] += 1;
            }
        }
        // Per-region evaluation over the gathered groups.
        let mut begin = 0usize;
        for (r, &count) in counts.iter().enumerate() {
            let count = count as usize;
            if count == 0 {
                continue;
            }
            let ids = &order[begin..begin + count];
            self.eval_region_batch(r, points, ids, out);
            if let Some(regs) = regions.as_deref_mut() {
                for &i in ids {
                    regs[i as usize] = r as u32;
                }
            }
            begin += count;
        }
        Ok(())
    }

    /// Evaluates one region's fused polynomial over a gathered group of
    /// batch points (`ids` holds the point indices) in micro-tiles of
    /// [`TILE`].  Per tile: gather and normalise the coordinates into
    /// per-dimension lanes, grow the power ladders one multiply per level,
    /// then stream the shared monomial plan with the five accumulator lanes
    /// held in registers — every inner loop runs over `TILE` contiguous
    /// doubles, and the only memory traffic per term is the ladder loads.
    /// The per-point operation order matches the scalar evaluator exactly
    /// (skipped `x^0` factors multiply by literal `1.0` there, which is
    /// bit-exact), so batch results equal pointwise results bit-for-bit.
    // lint: allow(panic-free): tile lanes are bounded by TILE, ladder levels by
    // MAX_EXP/MAX_DIM, `ids` holds validated point indices, and term slices are
    // sized at compile time
    fn eval_region_batch(
        &self,
        region: usize,
        points: &BatchPoints,
        ids: &[u32],
        out: &mut [Summary],
    ) {
        let reg = &self.regions[region];
        let poly = &reg.poly;
        let dim = self.dim;
        // lint: hot-path begin
        // The ladder scratch is zeroed once per group: lanes past the tail
        // length are never read, and zero-extent dimensions (never written)
        // must read as the scalar path's `x = 0.0`.
        let mut lad = [[[0.0f64; TILE]; MAX_EXP]; MAX_DIM];
        let mut base = 0;
        while base < ids.len() {
            let tl = (ids.len() - base).min(TILE);
            let tile = &ids[base..base + tl];
            // Gathered, normalised coordinates (same arithmetic as the
            // scalar path, including the zero-extent rule), then the power
            // ladders: level `e` lane = level `e - 1` lane times `x`, the
            // same single multiply per entry as the scalar ladder.
            for d in 0..dim {
                if reg.extent_f[d] != 0.0 {
                    let column = points.column(d);
                    let lo = reg.lo_f[d];
                    let extent = reg.extent_f[d];
                    for (j, &i) in tile.iter().enumerate() {
                        lad[d][0][j] = (column[i as usize] as f64 - lo) / extent;
                    }
                }
                let levels = poly.max_exp[d] as usize;
                for e in 1..levels {
                    for j in 0..tl {
                        lad[d][e][j] = lad[d][e - 1][j] * lad[d][0][j];
                    }
                }
            }
            // Stream the monomial plan: build each term's basis lane from the
            // ladders (skipping exact `* 1.0` factors), then feed the five
            // register-resident accumulator lanes.
            let mut acc = [[0.0f64; TILE]; 5];
            for t in 0..poly.term_count {
                let exps = &poly.exponents[t * dim..(t + 1) * dim];
                let mut basis = [0.0f64; TILE];
                let mut have_factor = false;
                for (d, &e) in exps.iter().enumerate() {
                    if e == 0 {
                        continue;
                    }
                    let level = &lad[d][e as usize - 1];
                    if have_factor {
                        for j in 0..TILE {
                            basis[j] *= level[j];
                        }
                    } else {
                        basis.copy_from_slice(level);
                        have_factor = true;
                    }
                }
                if !have_factor {
                    basis.fill(1.0);
                }
                let coeffs = &poly.coefficients[t * 5..t * 5 + 5];
                for (row, &c) in acc.iter_mut().zip(coeffs) {
                    for j in 0..TILE {
                        row[j] += c * basis[j];
                    }
                }
            }
            // Clamp and scatter back to each point's slot, identical to the
            // scalar epilogue.
            for (j, &i) in tile.iter().enumerate() {
                let mut values = [acc[0][j], acc[1][j], acc[2][j], acc[3][j], acc[4][j]];
                for v in &mut values {
                    if !v.is_nan() {
                        *v = v.max(0.0);
                    }
                }
                out[i as usize] = Summary::from_quantities(&values);
            }
            base += tl;
        }
        // lint: hot-path end
    }

    /// Nearest-region fallback over a candidate subset (or all regions),
    /// with the same first-minimum semantics as the reference evaluator.
    // lint: allow(panic-free): candidate indices come from the fallback table or
    // 0..regions.len(), and compile() rejects models with no regions
    fn nearest(&self, point: &[usize], candidates: Option<&[u32]>) -> (Summary, u32) {
        // lint: hot-path begin
        let mut best = 0usize;
        let mut best_distance = f64::INFINITY;
        let mut consider = |i: usize| {
            let d = self.regions[i].distance(self.dim, point);
            if d.total_cmp(&best_distance) == Ordering::Less {
                best = i;
                best_distance = d;
            }
        };
        match candidates {
            Some(list) => list.iter().for_each(|&i| consider(i as usize)),
            None => (0..self.regions.len()).for_each(&mut consider),
        }
        // lint: hot-path end
        (self.regions[best].eval(self.dim, point), best as u32)
    }
}

/// The best (minimum-error, NaN-last, first-wins) region containing `point`,
/// iterating in stored order exactly like the reference evaluator.
// lint: allow(panic-free): `b` indexes the same slice enumerate produced it from
fn best_containing(regions: &[CompiledRegion], dim: usize, point: &[usize]) -> Option<usize> {
    // lint: hot-path begin
    let mut best: Option<usize> = None;
    for (i, r) in regions.iter().enumerate() {
        if !r.contains(dim, point) {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) => {
                if error_order(r.error, regions[b].error) == Ordering::Less {
                    best = Some(i);
                }
            }
        }
    }
    // lint: hot-path end
    best
}

/// The regions that can be nearest to *some* point of the cell
/// `[cell_lo, cell_hi]`: region `r` qualifies iff its minimum possible
/// squared distance over the cell does not exceed the smallest maximum
/// squared distance of any region (interval arithmetic per dimension; both
/// bounds are attained at cell corners, so the bounds are tight).
fn fallback_candidates(
    regions: &[CompiledRegion],
    dim: usize,
    cell_lo: &[usize; MAX_DIM],
    cell_hi: &[usize; MAX_DIM],
) -> Vec<u32> {
    let dd = |p: f64, lo: f64, hi: f64| {
        if p < lo {
            lo - p
        } else if p > hi {
            p - hi
        } else {
            0.0
        }
    };
    let mut min2 = Vec::with_capacity(regions.len());
    let mut max2 = Vec::with_capacity(regions.len());
    for r in regions {
        let mut dmin2 = 0.0;
        let mut dmax2 = 0.0;
        for d in 0..dim {
            let (clo, chi) = (cell_lo[d] as f64, cell_hi[d] as f64);
            let lo_d = if chi < r.lo_f[d] {
                r.lo_f[d] - chi
            } else if clo > r.hi_f[d] {
                clo - r.hi_f[d]
            } else {
                0.0
            };
            let hi_d = dd(clo, r.lo_f[d], r.hi_f[d]).max(dd(chi, r.lo_f[d], r.hi_f[d]));
            dmin2 += lo_d * lo_d;
            dmax2 += hi_d * hi_d;
        }
        min2.push(dmin2);
        max2.push(dmax2);
    }
    let threshold = max2.iter().cloned().fold(f64::INFINITY, f64::min);
    (0..regions.len())
        .filter(|&i| min2[i] <= threshold)
        .map(|i| i as u32)
        .collect()
}

/// One submodel in compiled form, or the reference model when the fast path
/// cannot represent it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CompiledSubmodel {
    /// Compiled onto the indexed, fused fast path.
    Fast(CompiledPiecewise),
    /// Shapes the fast path cannot represent fall back to the reference
    /// evaluator.
    Reference(PiecewiseModel),
}

impl CompiledSubmodel {
    fn compile(model: &PiecewiseModel) -> CompiledSubmodel {
        match CompiledPiecewise::compile(model) {
            Some(fast) => CompiledSubmodel::Fast(fast),
            None => CompiledSubmodel::Reference(model.clone()),
        }
    }

    /// Traced evaluation; both paths report the answering region's index in
    /// source region order.
    fn eval_traced(&self, point: &[usize]) -> Result<(Summary, u32)> {
        match self {
            CompiledSubmodel::Fast(c) => c.eval_traced(point),
            CompiledSubmodel::Reference(m) => {
                m.eval_traced(point).map(|(summary, i)| (summary, i as u32))
            }
        }
    }

    fn is_fast(&self) -> bool {
        matches!(self, CompiledSubmodel::Fast(_))
    }
}

/// A [`RoutineModel`] compiled for allocation-free call estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledRoutineModel {
    routine: Routine,
    space_lo: [usize; MAX_DIM],
    space_hi: [usize; MAX_DIM],
    /// Submodels under fixed-size keys; the handful of flag combinations per
    /// routine makes an in-order scan faster than hashing.
    submodels: Vec<(FlagKey, CompiledSubmodel)>,
}

impl CompiledRoutineModel {
    /// Compiles a routine model.  Submodel keys that do not fit a
    /// [`FlagKey`] are dropped: no key produced from an actual [`Call`] can
    /// collide with them, so they are unreachable through [`estimate`].
    ///
    /// [`estimate`]: CompiledRoutineModel::estimate
    pub fn compile(model: &RoutineModel) -> CompiledRoutineModel {
        let mut space_lo = [0usize; MAX_DIM];
        let mut space_hi = [usize::MAX; MAX_DIM];
        let dims = model.space.dim().min(MAX_DIM);
        space_lo[..dims].copy_from_slice(&model.space.lo()[..dims]);
        space_hi[..dims].copy_from_slice(&model.space.hi()[..dims]);
        // Sort keys for a deterministic compiled form.
        let mut keys: Vec<&Vec<usize>> = model.submodels.keys().collect();
        keys.sort();
        let submodels = keys
            .into_iter()
            .filter_map(|key| {
                let fixed = FlagKey::from_slice(key)?;
                Some((fixed, CompiledSubmodel::compile(&model.submodels[key])))
            })
            .collect();
        CompiledRoutineModel {
            routine: model.routine,
            space_lo,
            space_hi,
            submodels,
        }
    }

    /// The modelled routine.
    pub fn routine(&self) -> Routine {
        self.routine
    }

    /// Number of compiled submodels.
    pub fn submodel_count(&self) -> usize {
        self.submodels.len()
    }

    /// Number of submodels on the fast (indexed, fused) path.
    pub fn fast_submodel_count(&self) -> usize {
        self.submodels.iter().filter(|(_, s)| s.is_fast()).count()
    }

    /// Estimates the performance of `call` — the allocation-free equivalent
    /// of [`RoutineModel::estimate`], with identical clamping semantics.
    pub fn estimate(&self, call: &Call) -> Result<Summary> {
        self.estimate_traced(call).map(|(summary, _, _)| summary)
    }

    /// [`CompiledRoutineModel::estimate`], additionally reporting which
    /// submodel (flag key) and region (index in source region order) answered
    /// — the per-call hook behind the serving layer's refinement telemetry.
    pub fn estimate_traced(&self, call: &Call) -> Result<(Summary, FlagKey, u32)> {
        if call.routine() != self.routine {
            return Err(ModelError::MissingSubmodel(format!(
                "model is for {}, call is {}",
                self.routine,
                call.routine()
            )));
        }
        let key = submodel_key_fixed(call);
        let submodel = self
            .submodels
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| s)
            .ok_or_else(|| {
                ModelError::MissingSubmodel(format!(
                    "no submodel for {} flags {:?} ({})",
                    self.routine,
                    key.to_vec(),
                    call.flag_chars()
                ))
            })?;
        let (sizes, len) = call.sizes_fixed();
        let mut clamped = [0usize; MAX_DIM];
        for d in 0..len.min(MAX_DIM) {
            // lint: allow(panic-free): d < len.min(MAX_DIM) bounds every array
            clamped[d] = sizes[d].clamp(self.space_lo[d], self.space_hi[d]);
        }
        submodel
            // lint: allow(panic-free): len <= Call::MAX_SIZES, which never exceeds MAX_DIM
            .eval_traced(&clamped[..len])
            .map(|(summary, region)| (summary, key, region))
    }

    /// Returns `true` when a compiled submodel exists for this flag key.
    pub fn has_submodel(&self, key: FlagKey) -> bool {
        self.submodels.iter().any(|(k, _)| *k == key)
    }

    /// Clamps `sizes` into the model's sampled space — the exact per-call
    /// clamping [`estimate_traced`](CompiledRoutineModel::estimate_traced)
    /// applies before evaluation, exposed so batch callers can pre-clamp
    /// points into a [`BatchPoints`] column store.
    pub fn clamp_sizes(&self, sizes: &[usize], clamped: &mut [usize; MAX_DIM]) {
        for d in 0..sizes.len().min(MAX_DIM) {
            clamped[d] = sizes[d].clamp(self.space_lo[d], self.space_hi[d]);
        }
    }

    /// Batch counterpart of the evaluation step of
    /// [`estimate_traced`](CompiledRoutineModel::estimate_traced): evaluates
    /// every (already clamped) point of `points` against the submodel for
    /// `key`, filling `out` (and `regions`, when given, with the answering
    /// region index per point).  Results are bit-identical to the pointwise
    /// path.
    pub fn estimate_batch_clamped(
        &self,
        key: FlagKey,
        points: &BatchPoints,
        out: &mut Vec<Summary>,
        mut regions: Option<&mut Vec<u32>>,
    ) -> Result<()> {
        let submodel = self
            .submodels
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| s)
            .ok_or_else(|| {
                ModelError::MissingSubmodel(format!(
                    "no submodel for {} flags {:?}",
                    self.routine,
                    key.to_vec()
                ))
            })?;
        match submodel {
            CompiledSubmodel::Fast(c) => {
                c.eval_batch_traced_into(points, out, regions.as_deref_mut())
            }
            CompiledSubmodel::Reference(m) => {
                let dim = points.dim();
                if dim > MAX_DIM {
                    return Err(ModelError::OutOfDomain(format!(
                        "point arity {dim} exceeds the supported maximum {MAX_DIM}"
                    )));
                }
                out.clear();
                out.reserve(points.len());
                if let Some(r) = regions.as_deref_mut() {
                    r.clear();
                    r.reserve(points.len());
                }
                let mut scratch = [0usize; MAX_DIM];
                for i in 0..points.len() {
                    points.read_point(i, &mut scratch);
                    let (summary, region) = m.eval_traced(&scratch[..dim])?;
                    out.push(summary);
                    if let Some(r) = regions.as_deref_mut() {
                        r.push(region as u32);
                    }
                }
                Ok(())
            }
        }
    }

    pub(crate) fn submodels(&self) -> &[(FlagKey, CompiledSubmodel)] {
        &self.submodels
    }

    /// Rebuilds a compiled routine model from serialized sections, applying
    /// the same space-clamp initialisation as
    /// [`compile`](CompiledRoutineModel::compile).
    pub(crate) fn from_raw_parts(
        routine: Routine,
        space: &Region,
        submodels: Vec<(FlagKey, CompiledSubmodel)>,
    ) -> CompiledRoutineModel {
        let mut space_lo = [0usize; MAX_DIM];
        let mut space_hi = [usize::MAX; MAX_DIM];
        let dims = space.dim().min(MAX_DIM);
        space_lo[..dims].copy_from_slice(&space.lo()[..dims]);
        space_hi[..dims].copy_from_slice(&space.hi()[..dims]);
        CompiledRoutineModel {
            routine,
            space_lo,
            space_hi,
            submodels,
        }
    }
}

/// A fully compiled [`ModelRepository`]: the source repository plus one
/// [`CompiledRoutineModel`] per stored model.
///
/// Compilation happens once — [`SharedRepository`](crate::SharedRepository)
/// compiles at construction and on every swap/merge, so every reader
/// snapshot is already compiled.
///
/// Binary-loaded repositories ([`crate::binfmt::decode`]) start with the
/// compiled entries only: the source repository materialises lazily from
/// the retained (already validated) bytes on first
/// [`source()`](CompiledRepository::source) access, so the serving path
/// never pays for structures only merge/save/reference evaluation need.
#[derive(Debug, Clone)]
pub struct CompiledRepository {
    source: OnceLock<Arc<ModelRepository>>,
    /// The validated encoded form, kept only by the binary loader so the
    /// lazy `source()` rebuild has something to decode from.
    raw: Option<Vec<u8>>,
    entries: Vec<(ModelKey, CompiledRoutineModel)>,
}

impl CompiledRepository {
    /// Compiles a repository, taking ownership of the source.
    pub fn compile(repository: ModelRepository) -> CompiledRepository {
        CompiledRepository::compile_arc(Arc::new(repository))
    }

    /// Compiles an already-shared repository snapshot.
    pub fn compile_arc(source: Arc<ModelRepository>) -> CompiledRepository {
        let entries = source
            .iter()
            .map(|(key, model)| (key.clone(), CompiledRoutineModel::compile(model)))
            .collect();
        CompiledRepository {
            source: OnceLock::from(source),
            raw: None,
            entries,
        }
    }

    /// Assembles a compiled repository straight from its validated encoded
    /// form (the binary loader's entry point): the source stays
    /// unmaterialised until [`source()`](CompiledRepository::source) asks
    /// for it.
    pub(crate) fn from_encoded(
        raw: Vec<u8>,
        entries: Vec<(ModelKey, CompiledRoutineModel)>,
    ) -> CompiledRepository {
        CompiledRepository {
            source: OnceLock::new(),
            raw: Some(raw),
            entries,
        }
    }

    pub(crate) fn entries(&self) -> &[(ModelKey, CompiledRoutineModel)] {
        &self.entries
    }

    /// The uncompiled source repository (the reference implementation).
    ///
    /// For binary-loaded repositories the first call rebuilds the source
    /// from the retained bytes (concurrent callers are serialised by the
    /// cell); every other constructor fills the cell up front.
    // lint: allow(panic-free): lazy re-decode of bytes that already passed the
    // full decode validation when this repository was built
    pub fn source(&self) -> &Arc<ModelRepository> {
        self.source.get_or_init(|| {
            // lint: allow(unwrap): every constructor either fills the cell or stores the bytes
            let raw = self
                .raw
                .as_ref()
                .expect("unmaterialised source without retained bytes");
            // lint: allow(unwrap): these exact bytes passed the full decode validation already
            let repo =
                crate::binfmt::decode_source(raw).expect("validated bytes failed to re-decode");
            Arc::new(repo)
        })
    }

    /// Number of compiled models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the repository holds no models.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the compiled model for a routine / machine / locality
    /// combination.
    pub fn get(
        &self,
        routine: Routine,
        machine_id: &str,
        locality: Locality,
    ) -> Option<&CompiledRoutineModel> {
        let routine_name = routine.name();
        let locality_name = locality.name();
        self.entries
            .iter()
            .find(|(key, _)| {
                key.routine == routine_name
                    && key.locality == locality_name
                    && key.machine_id == machine_id
            })
            .map(|(_, model)| model)
    }

    /// Pre-resolves one machine/locality combination into a per-routine
    /// routing table, so per-call lookups are a plain array index.
    // lint: allow(panic-free): routine.index() is bounded by Routine::ALL, the
    // slots array's length
    pub fn resolve(&self, machine_id: &str, locality: Locality) -> RoutineTable {
        let mut table = RoutineTable::default();
        for routine in Routine::ALL {
            table.slots[routine.index()] = self
                .entries
                .iter()
                .position(|(key, _)| {
                    key.routine == routine.name()
                        && key.locality == locality.name()
                        && key.machine_id == machine_id
                })
                .map(|i| i as u32);
        }
        table
    }

    /// The compiled model at a [`RoutineTable`] slot.
    // lint: allow(panic-free): slots come from resolve()'s position() over the
    // same entries vec
    pub fn model_at(&self, slot: usize) -> &CompiledRoutineModel {
        &self.entries[slot].1
    }
}

/// A pre-resolved (machine, locality) routing table: one optional
/// [`CompiledRepository`] slot per routine.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoutineTable {
    slots: [Option<u32>; Routine::ALL.len()],
}

impl RoutineTable {
    /// The repository slot of `routine`'s model, if present.
    // lint: allow(panic-free): routine.index() is bounded by Routine::ALL, the
    // slots array's length
    pub fn slot(&self, routine: Routine) -> Option<usize> {
        self.slots[routine.index()].map(|i| i as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Polynomial, RegionModel};
    use dla_mat::stats::Quantity;

    fn quadratic_summary(p: &[usize]) -> Summary {
        let x = p[0] as f64;
        let y = p.get(1).map(|&v| v as f64).unwrap_or(0.0);
        let median = 900.0 + 1.7 * x + 2.3 * y + 0.013 * x * y;
        Summary {
            min: median * 0.9,
            mean: median * 1.02,
            median,
            max: median * 1.2,
            std_dev: median * 0.03,
            count: 9,
        }
    }

    fn fitted_region(region: &Region, grid: usize) -> RegionModel {
        let samples: Vec<(Vec<usize>, Summary)> = region
            .sample_grid(grid, 8)
            .into_iter()
            .map(|p| {
                let s = quadratic_summary(&p);
                (p, s)
            })
            .collect();
        RegionModel::fit(region.clone(), &samples, 2).unwrap()
    }

    fn close(a: f64, b: f64) -> bool {
        if a.is_nan() || b.is_nan() {
            return a.is_nan() && b.is_nan();
        }
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    fn assert_matches(naive: &PiecewiseModel, compiled: &CompiledPiecewise, point: &[usize]) {
        let n = naive.eval(point).unwrap();
        let c = compiled.eval(point).unwrap();
        for q in Quantity::ALL {
            assert!(
                close(n.get(q), c.get(q)),
                "{q:?} at {point:?}: naive {} vs compiled {}",
                n.get(q),
                c.get(q)
            );
        }
    }

    #[test]
    fn fused_polynomial_matches_reference() {
        let region = Region::new(vec![8, 8], vec![512, 512]);
        let rm = fitted_region(&region, 5);
        let compiled = CompiledVectorPolynomial::compile(&rm.poly, 2).unwrap();
        for p in region.sample_grid(7, 8) {
            let x_vec = region.normalize(&p);
            let mut x = [0.0; MAX_DIM];
            x[..2].copy_from_slice(&x_vec);
            let reference = rm.poly.eval(&x_vec);
            let fused = compiled.eval(&x);
            for q in Quantity::ALL {
                assert!(
                    close(reference.get(q), fused[q.index()]),
                    "{q:?}: {} vs {}",
                    reference.get(q),
                    fused[q.index()]
                );
            }
        }
        assert!(compiled.term_count() >= 6);
    }

    #[test]
    fn compiled_piecewise_matches_reference_on_split_regions() {
        let space = Region::new(vec![8, 8], vec![512, 512]);
        let mut regions: Vec<RegionModel> = space
            .split(32, 8)
            .iter()
            .map(|r| fitted_region(r, 4))
            .collect();
        // Give the overlap boundaries a deterministic winner ordering.
        for (i, r) in regions.iter_mut().enumerate() {
            r.error = 0.01 * (i + 1) as f64;
        }
        let model = PiecewiseModel::new(space.clone(), regions, 64);
        let compiled = CompiledPiecewise::compile(&model).unwrap();
        assert!(compiled.is_indexed());
        assert!(compiled.cell_count() >= 4);
        assert_eq!(compiled.region_count(), model.region_count());
        for p in space.sample_grid(9, 1) {
            assert_matches(&model, &compiled, &p);
        }
        // Batch evaluation agrees bit-for-bit with pointwise evaluation,
        // through both the row adapter and the column store directly.
        let points = space.sample_grid(5, 8);
        let batch = compiled.eval_batch_rows(&points).unwrap();
        for (p, b) in points.iter().zip(&batch) {
            assert_eq!(compiled.eval(p).unwrap(), *b);
        }
        let columns = BatchPoints::from_rows(2, &points).unwrap();
        assert_eq!(columns.len(), points.len());
        assert_eq!(compiled.eval_batch(&columns).unwrap(), batch);
        // The traced variant reports the same regions as scalar tracing.
        let mut out = Vec::new();
        let mut regs = Vec::new();
        compiled
            .eval_batch_traced_into(&columns, &mut out, Some(&mut regs))
            .unwrap();
        for ((p, s), r) in points.iter().zip(&out).zip(&regs) {
            let (scalar, region) = compiled.eval_traced(p).unwrap();
            assert_eq!(scalar, *s);
            assert_eq!(region, *r);
        }
        // Arity mismatches surface as errors on the batch path too.
        let wrong = BatchPoints::from_rows(1, &[vec![64]]).unwrap();
        assert!(compiled.eval_batch(&wrong).is_err());
    }

    #[test]
    fn compiled_fallback_matches_reference_outside_coverage() {
        let space = Region::new(vec![8], vec![1024]);
        let left = Region::new(vec![8], vec![256]);
        let right = Region::new(vec![640], vec![1024]);
        let model = PiecewiseModel::new(
            space.clone(),
            vec![fitted_region(&left, 6), fitted_region(&right, 6)],
            12,
        );
        let compiled = CompiledPiecewise::compile(&model).unwrap();
        // Covered, uncovered-between, and outside-the-space points.
        for p in [8usize, 100, 256, 300, 448, 500, 639, 640, 1024, 1500, 2000] {
            assert_matches(&model, &compiled, &[p]);
        }
    }

    #[test]
    fn compiled_piecewise_rejects_bad_arity_and_prefers_low_error() {
        let space = Region::new(vec![8, 8], vec![256, 256]);
        let mut a = fitted_region(&space, 4);
        let mut b = fitted_region(&space, 4);
        a.error = 0.5;
        b.error = 0.01;
        let model = PiecewiseModel::new(space, vec![a, b.clone()], 32);
        let compiled = CompiledPiecewise::compile(&model).unwrap();
        assert!(compiled.eval(&[64]).is_err());
        assert_eq!(compiled.eval(&[64, 64]).unwrap(), b.eval(&[64, 64]));
        // NaN-error region sorts last here too.
        let mut c = b.clone();
        c.error = f64::NAN;
        let model = PiecewiseModel::new(
            Region::new(vec![8, 8], vec![256, 256]),
            vec![c, b.clone()],
            32,
        );
        let compiled = CompiledPiecewise::compile(&model).unwrap();
        assert_eq!(compiled.eval(&[64, 64]).unwrap(), b.eval(&[64, 64]));
    }

    #[test]
    fn uncompilable_shapes_fall_back_to_reference() {
        // Degree-9 exponents exceed the power ladder.
        let region = Region::new(vec![8], vec![128]);
        let tall = Polynomial::new(1, vec![vec![9]], vec![1.0]).unwrap();
        let vp = VectorPolynomial::new(vec![tall; 5]).unwrap();
        assert!(CompiledVectorPolynomial::compile(&vp, 1).is_none());
        let rm = RegionModel {
            region: region.clone(),
            poly: vp,
            error: 0.0,
            samples_used: 1,
            revision: 0,
        };
        let model = PiecewiseModel::new(region, vec![rm], 1);
        assert!(CompiledPiecewise::compile(&model).is_none());
        // An empty model cannot be compiled either.
        let empty = PiecewiseModel::new(Region::new(vec![8], vec![128]), vec![], 0);
        assert!(CompiledPiecewise::compile(&empty).is_none());
        // The submodel wrapper still evaluates through the reference path.
        let sub = CompiledSubmodel::compile(&model);
        assert!(!sub.is_fast());
        let (summary, region) = sub.eval_traced(&[64]).unwrap();
        assert!(close(summary.median, model.eval(&[64]).unwrap().median));
        assert_eq!(region as usize, model.eval_traced(&[64]).unwrap().1);
    }

    #[test]
    fn compiled_repository_resolves_and_estimates() {
        use dla_blas::{Diag, Side, Trans, Uplo};

        let space = Region::new(vec![8, 8], vec![512, 512]);
        let mut model =
            RoutineModel::new(Routine::Trsm, "machine-a", Locality::InCache, space.clone());
        let rm = fitted_region(&space, 5);
        let pw = PiecewiseModel::new(space.clone(), vec![rm], 25);
        model.insert_submodel(vec![0, 0, 0], pw.clone());
        let mut repo = ModelRepository::new();
        repo.insert(model.clone());
        let compiled = CompiledRepository::compile(repo);
        assert_eq!(compiled.len(), 1);
        assert!(!compiled.is_empty());
        assert_eq!(compiled.source().len(), 1);

        let call = Call::trsm(
            Side::Left,
            Uplo::Lower,
            Trans::NoTrans,
            Diag::Unit,
            300,
            700,
            1.0,
        );
        let table = compiled.resolve("machine-a", Locality::InCache);
        let slot = table.slot(Routine::Trsm).unwrap();
        let fast = compiled.model_at(slot);
        assert_eq!(fast.routine(), Routine::Trsm);
        assert_eq!(fast.submodel_count(), 1);
        assert_eq!(fast.fast_submodel_count(), 1);
        let estimate = fast.estimate(&call).unwrap();
        let reference = model.estimate(&call).unwrap();
        assert!(close(estimate.median, reference.median));
        // Clamping matches the reference too (700 > 512).
        assert!(close(estimate.max, reference.max));

        // Missing pieces surface exactly like the reference.
        assert!(table.slot(Routine::Gemm).is_none());
        assert!(compiled
            .get(Routine::Trsm, "machine-b", Locality::InCache)
            .is_none());
        assert!(compiled
            .get(Routine::Trsm, "machine-a", Locality::OutOfCache)
            .is_none());
        let upper = Call::trsm(
            Side::Left,
            Uplo::Upper,
            Trans::NoTrans,
            Diag::NonUnit,
            64,
            64,
            1.0,
        );
        assert!(matches!(
            fast.estimate(&upper),
            Err(ModelError::MissingSubmodel(_))
        ));
        let gemm = Call::gemm(Trans::NoTrans, Trans::NoTrans, 8, 8, 8, 1.0, 0.0);
        assert!(fast.estimate(&gemm).is_err());
    }
}
