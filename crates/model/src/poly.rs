//! Multivariate polynomials and least-squares fitting.

use std::sync::Arc;

use dla_mat::qr::{design_matrix, lstsq};
use dla_mat::stats::relative_error;

use crate::{ModelError, Result};

/// Generates the exponent tuples of all monomials in `dim` variables with
/// total degree at most `degree`, in graded lexicographic order.
///
/// The tuples are emitted directly in their final order — ascending total
/// degree, lexicographic within a degree — so no post-sort (with its
/// per-comparison key clone) is needed.
pub fn monomial_exponents(dim: usize, degree: u32) -> Vec<Vec<u32>> {
    /// Emits every composition of exactly `remaining` over the trailing
    /// `dim - current.len()` positions, in lexicographic order.
    fn rec(dim: usize, remaining: u32, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if current.len() + 1 == dim {
            // Last position takes the remainder: total degree is exact.
            current.push(remaining);
            out.push(current.clone());
            current.pop();
            return;
        }
        for e in 0..=remaining {
            current.push(e);
            rec(dim, remaining - e, current, out);
            current.pop();
        }
    }
    let mut all = Vec::new();
    if dim == 0 {
        all.push(Vec::new());
        return all;
    }
    let mut scratch = Vec::with_capacity(dim);
    for total in 0..=degree {
        rec(dim, total, &mut scratch, &mut all);
    }
    all
}

/// A multivariate polynomial `p(x) = sum_t c_t * prod_d x_d^{e_{t,d}}`.
///
/// The exponent table is shared behind an [`Arc`]: the five quantity
/// polynomials of one fit (and every clone of a fitted model) reference a
/// single monomial plan instead of deep-copying it.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    dim: usize,
    exponents: Arc<Vec<Vec<u32>>>,
    coefficients: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from explicit monomials and coefficients.
    pub fn new(dim: usize, exponents: Vec<Vec<u32>>, coefficients: Vec<f64>) -> Result<Polynomial> {
        Polynomial::from_shared(dim, Arc::new(exponents), coefficients)
    }

    /// Creates a polynomial that shares an existing monomial plan (no copy of
    /// the exponent table — the fit engine hands the same plan to all five
    /// quantity polynomials).
    pub fn from_shared(
        dim: usize,
        exponents: Arc<Vec<Vec<u32>>>,
        coefficients: Vec<f64>,
    ) -> Result<Polynomial> {
        if exponents.len() != coefficients.len() {
            return Err(ModelError::Fit(format!(
                "{} exponent tuples but {} coefficients",
                exponents.len(),
                coefficients.len()
            )));
        }
        if exponents.iter().any(|e| e.len() != dim) {
            return Err(ModelError::Fit("exponent arity mismatch".to_string()));
        }
        Ok(Polynomial {
            dim,
            exponents,
            coefficients,
        })
    }

    /// The constant zero polynomial in `dim` variables.
    pub fn zero(dim: usize) -> Polynomial {
        Polynomial {
            dim,
            exponents: Arc::new(vec![vec![0; dim]]),
            coefficients: vec![0.0],
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of monomial terms.
    pub fn term_count(&self) -> usize {
        self.coefficients.len()
    }

    /// The monomial exponents.
    pub fn exponents(&self) -> &[Vec<u32>] {
        &self.exponents
    }

    /// The coefficients, in the same order as [`Polynomial::exponents`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Evaluates the polynomial at `point`.
    ///
    /// Panics if the point has the wrong dimension.
    // lint: allow(panic-free): the arity assert is the documented contract and
    // bounds the indexing
    pub fn eval(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.dim, "polynomial evaluated at wrong arity");
        let mut acc = 0.0;
        for (e, c) in self.exponents.iter().zip(self.coefficients.iter()) {
            let mut term = *c;
            for d in 0..self.dim {
                term *= point[d].powi(e[d] as i32);
            }
            acc += term;
        }
        acc
    }

    /// Fits a polynomial of total degree `degree` to the given samples by
    /// least squares.
    ///
    /// Returns an error when there are fewer samples than monomials.
    pub fn fit(points: &[Vec<f64>], values: &[f64], degree: u32) -> Result<Polynomial> {
        if points.is_empty() || points.len() != values.len() {
            return Err(ModelError::Fit(format!(
                "{} points but {} values",
                points.len(),
                values.len()
            )));
        }
        let dim = points[0].len();
        let exponents = monomial_exponents(dim, degree);
        if points.len() < exponents.len() {
            return Err(ModelError::NotEnoughSamples {
                have: points.len(),
                need: exponents.len(),
            });
        }
        let a = design_matrix(points, &exponents)
            .map_err(|e| ModelError::Fit(format!("design matrix: {e}")))?;
        let coeffs = lstsq(a, values).map_err(|e| ModelError::Fit(format!("lstsq: {e}")))?;
        Polynomial::new(dim, exponents, coeffs)
    }

    /// Maximum relative error of the polynomial over the given samples
    /// (the accuracy measure used by the Modeler).
    pub fn max_relative_error(&self, points: &[Vec<f64>], values: &[f64]) -> f64 {
        points
            .iter()
            .zip(values.iter())
            .map(|(p, &v)| relative_error(self.eval(p), v))
            .fold(0.0, f64::max)
    }

    /// Mean relative error of the polynomial over the given samples.
    pub fn mean_relative_error(&self, points: &[Vec<f64>], values: &[f64]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let sum: f64 = points
            .iter()
            .zip(values.iter())
            .map(|(p, &v)| relative_error(self.eval(p), v))
            .sum();
        sum / points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomials_1d() {
        let m = monomial_exponents(1, 2);
        assert_eq!(m, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(monomial_exponents(1, 0), vec![vec![0]]);
    }

    #[test]
    fn monomials_2d_quadratic() {
        let m = monomial_exponents(2, 2);
        // 1, x, y, x^2, xy, y^2
        assert_eq!(m.len(), 6);
        assert!(m.contains(&vec![0, 0]));
        assert!(m.contains(&vec![1, 1]));
        assert!(m.contains(&vec![2, 0]));
        assert!(m.contains(&vec![0, 2]));
        // graded order: constant first
        assert_eq!(m[0], vec![0, 0]);
    }

    #[test]
    fn monomials_3d_count() {
        // C(3+2, 2) = 10 monomials of total degree <= 2 in 3 variables
        assert_eq!(monomial_exponents(3, 2).len(), 10);
    }

    #[test]
    fn monomial_count_is_binomial() {
        // There are C(d + k, k) monomials of total degree <= k in d variables.
        fn binomial(n: u64, k: u64) -> u64 {
            (1..=k).fold(1, |acc, i| acc * (n - k + i) / i)
        }
        for dim in 1..=4usize {
            for degree in 0..=4u32 {
                let monomials = monomial_exponents(dim, degree);
                let expected = binomial((dim as u64) + u64::from(degree), u64::from(degree));
                assert_eq!(
                    monomials.len() as u64,
                    expected,
                    "dim {dim} degree {degree}"
                );
                // All distinct and within the degree bound.
                let mut unique = monomials.clone();
                unique.sort();
                unique.dedup();
                assert_eq!(unique.len(), monomials.len());
                assert!(monomials.iter().all(|e| e.iter().sum::<u32>() <= degree));
            }
        }
    }

    #[test]
    fn eval_simple_polynomial() {
        // p(x, y) = 2 + 3x + 4y^2
        let p = Polynomial::new(
            2,
            vec![vec![0, 0], vec![1, 0], vec![0, 2]],
            vec![2.0, 3.0, 4.0],
        )
        .unwrap();
        assert_eq!(p.eval(&[0.0, 0.0]), 2.0);
        assert_eq!(p.eval(&[1.0, 1.0]), 9.0);
        assert_eq!(p.eval(&[2.0, 3.0]), 2.0 + 6.0 + 36.0);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.term_count(), 3);
    }

    #[test]
    fn construction_errors() {
        assert!(Polynomial::new(2, vec![vec![0, 0]], vec![1.0, 2.0]).is_err());
        assert!(Polynomial::new(2, vec![vec![0]], vec![1.0]).is_err());
        let z = Polynomial::zero(3);
        assert_eq!(z.eval(&[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn fit_recovers_exact_quadratic() {
        // f(x, y) = 1 + 2x - y + 0.5x^2 + 0.25xy
        let f = |x: f64, y: f64| 1.0 + 2.0 * x - y + 0.5 * x * x + 0.25 * x * y;
        let mut points = Vec::new();
        let mut values = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let (x, y) = (i as f64 * 0.2, j as f64 * 0.2);
                points.push(vec![x, y]);
                values.push(f(x, y));
            }
        }
        let p = Polynomial::fit(&points, &values, 2).unwrap();
        assert!(p.max_relative_error(&points, &values) < 1e-9);
        assert!((p.eval(&[0.35, 0.77]) - f(0.35, 0.77)).abs() < 1e-9);
    }

    #[test]
    fn fit_reports_insufficient_samples() {
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let values = vec![1.0, 2.0];
        match Polynomial::fit(&points, &values, 2) {
            Err(ModelError::NotEnoughSamples { have, need }) => {
                assert_eq!(have, 2);
                assert_eq!(need, 6);
            }
            other => panic!("expected NotEnoughSamples, got {other:?}"),
        }
        assert!(Polynomial::fit(&[], &[], 2).is_err());
        assert!(Polynomial::fit(&points, &values[..1], 1).is_err());
    }

    #[test]
    fn error_metrics() {
        // constant polynomial fitted to noisy constant data
        let points: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let values: Vec<f64> = (0..10).map(|i| if i == 5 { 1.2 } else { 1.0 }).collect();
        let p = Polynomial::fit(&points, &values, 0).unwrap();
        let max_err = p.max_relative_error(&points, &values);
        let mean_err = p.mean_relative_error(&points, &values);
        assert!(max_err > mean_err);
        assert!(max_err < 0.2);
        assert_eq!(Polynomial::zero(1).mean_relative_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn eval_wrong_arity_panics() {
        let p = Polynomial::zero(2);
        let _ = p.eval(&[1.0]);
    }
}
