//! The compiled fit engine: single-QR multi-RHS region fitting with a
//! reusable workspace.
//!
//! [`VectorPolynomial::fit`] / [`RegionModel::fit`] are the *reference*
//! implementations: per fit they regenerate the monomial basis (six times —
//! once per quantity polynomial plus once for the sample-count check),
//! rebuild the same Vandermonde design matrix five times with a `powi` per
//! entry, clone it into five independent Householder QR factorisations, and
//! then re-evaluate the fitted polynomial pointwise to obtain the fit error.
//! That is fine for one-off fits, but the Modeler's adaptive refinement loop
//! fits hundreds of regions per submodel, so construction — the dominant
//! offline cost, and the latency `SharedRepository` rebuild/hot-swap is gated
//! on — has to be fast.
//!
//! [`FitWorkspace`] is the construction-side analogue of the compiled
//! evaluation engine:
//!
//! * **Cached monomial plans**: the `(dim, degree)` basis is generated once
//!   and shared (`Arc`) by every polynomial fitted against it, together with
//!   a [`DesignBuilder`] whose power ladder fills design-matrix rows without
//!   `powi`.
//! * **Single QR, five back-solves**: the design matrix is factored once and
//!   all five quantity vectors are back-solved against the shared factors
//!   ([`QrFactorization::solve_into`]); the rank-deficient ridge fallback is
//!   likewise derived from the stored factors, once.
//! * **Reusable buffers**: normalised points, per-quantity values, the design
//!   matrix (whose backing buffer is reclaimed from the factorisation after
//!   each fit) and the solution vectors all live in the workspace, so a
//!   steady-state region fit performs no heap allocation beyond the five
//!   coefficient vectors of the returned model.
//! * **Fit error from `A·c`**: the maximum relative error of the median fit
//!   is computed from the design matrix applied to the solved coefficients
//!   instead of re-evaluating the polynomial pointwise.
//! * **Folded degree fallback**: [`RegionModel::fit_with_fallback`] filters
//!   and normalises the samples once and retries degenerate fits at degree 0
//!   on the already-prepared buffers, where the reference path re-filters and
//!   re-normalises from scratch.
//!
//! Equivalence with the reference path is enforced by property tests
//! (`crates/core/tests/fit_equivalence.rs`), including rank-deficient and
//! fallback-degree sample sets.

use std::collections::HashMap;
use std::sync::Arc;

use dla_mat::qr::{DesignBuilder, QrFactorization, LSTSQ_RIDGE_LAMBDA};
use dla_mat::stats::{relative_error, Quantity, Summary};
use dla_mat::{MatError, Matrix};

use crate::poly::monomial_exponents;
use crate::{ModelError, Polynomial, Region, RegionModel, Result, VectorPolynomial};

/// Number of fitted quantities (one polynomial each).
const QUANTITIES: usize = 5;

/// A cached monomial basis for one `(dim, degree)` combination.
struct FitPlan {
    /// The exponent tuples, shared by every polynomial fitted with this plan.
    exponents: Arc<Vec<Vec<u32>>>,
    /// Ladder-based design-matrix row filler for the basis.
    builder: DesignBuilder,
}

impl FitPlan {
    fn new(dim: usize, degree: u32) -> FitPlan {
        let exponents = monomial_exponents(dim, degree);
        let builder = DesignBuilder::new(dim, &exponents)
            // lint: allow(unwrap): monomial_exponents is non-empty for every degree and matches dim by construction
            .expect("monomial_exponents produces a non-empty, arity-consistent basis");
        FitPlan {
            exponents: Arc::new(exponents),
            builder,
        }
    }
}

/// A reusable workspace for least-squares model fitting.
///
/// Create one per construction run (the Modeler holds one across its whole
/// region stack) and pass it to [`VectorPolynomial::fit_with`] /
/// [`RegionModel::fit_with`]; see the [module docs](self) for what is cached
/// and reused.
#[derive(Default)]
pub struct FitWorkspace {
    plans: HashMap<(usize, u32), FitPlan>,
    /// Normalised in-region coordinates, point-major (`m * dim`).
    points: Vec<f64>,
    /// Per-quantity sample values, quantity-major (`5 * m`).
    values: Vec<f64>,
    /// Backing buffer recycled through every design matrix / factorisation.
    design: Vec<f64>,
    /// Copy of the filled design matrix, kept for the `A·c` error pass.
    saved: Vec<f64>,
    /// Right-hand-side scratch (`m`).
    qtb: Vec<f64>,
    /// Solved coefficients, quantity-major (`5 * n`).
    coeffs: Vec<f64>,
    /// Normal-equation right-hand-side scratch for the ridge fallback (`n`).
    atb: Vec<f64>,
    /// In-region summary scratch for the region-filter pass.
    kept: Vec<Summary>,
}

impl FitWorkspace {
    /// Creates an empty workspace; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> FitWorkspace {
        FitWorkspace::default()
    }

    /// Number of distinct `(dim, degree)` monomial plans cached so far.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Copies the summaries' quantity values into the quantity-major buffer.
    fn load_values(&mut self, summaries: impl Iterator<Item = Summary>, m: usize) {
        self.values.clear();
        self.values.resize(QUANTITIES * m, 0.0);
        let mut i = 0;
        for s in summaries {
            for (q, quantity) in Quantity::ALL.iter().enumerate() {
                self.values[q * m + i] = s.get(*quantity);
            }
            i += 1;
        }
        debug_assert_eq!(i, m);
    }

    /// Fits the five quantity polynomials to the buffered points/values.
    ///
    /// Returns the vector polynomial and the maximum relative error of the
    /// median fit (computed from `A·c`).
    fn fit_prepared(
        &mut self,
        dim: usize,
        m: usize,
        degree: u32,
    ) -> Result<(VectorPolynomial, f64)> {
        let plan = self
            .plans
            .entry((dim, degree))
            .or_insert_with(|| FitPlan::new(dim, degree));
        let n = plan.builder.terms();
        if m < n {
            return Err(ModelError::NotEnoughSamples { have: m, need: n });
        }

        // Design matrix in the recycled buffer, one ladder-filled row per point.
        let mut data = std::mem::take(&mut self.design);
        data.clear();
        data.resize(m * n, 0.0);
        let mut a = Matrix::from_data(m, n, data)
            .map_err(|e| ModelError::Fit(format!("design matrix: {e}")))?;
        plan.builder.fill_matrix(&mut a, &self.points[..m * dim]);
        self.saved.clear();
        self.saved.extend_from_slice(a.as_slice());

        // One factorisation, five back-solves against the shared factors.
        let qr = QrFactorization::new(a).map_err(|e| ModelError::Fit(format!("lstsq: QR: {e}")))?;
        self.coeffs.clear();
        self.coeffs.resize(QUANTITIES * n, 0.0);
        self.qtb.resize(m, 0.0);
        let mut ridge: Option<QrFactorization> = None;
        for q in 0..QUANTITIES {
            self.qtb.copy_from_slice(&self.values[q * m..(q + 1) * m]);
            let x = &mut self.coeffs[q * n..(q + 1) * n];
            match qr.solve_into(&mut self.qtb, x) {
                Ok(()) => {}
                Err(MatError::Numerical { .. }) => {
                    // Rank-deficient system: ridge fallback from the stored
                    // factors, computed once and shared by all five solves.
                    if ridge.is_none() {
                        ridge = Some(
                            qr.ridge_factorization(LSTSQ_RIDGE_LAMBDA)
                                .map_err(|e| ModelError::Fit(format!("lstsq: ridge: {e}")))?,
                        );
                    }
                    // lint: allow(unwrap): the ridge factorization was installed two lines above
                    let rqr = ridge.as_ref().expect("just installed");
                    self.atb.resize(n, 0.0);
                    qr.rt_apply(&self.qtb, &mut self.atb)
                        .map_err(|e| ModelError::Fit(format!("lstsq: {e}")))?;
                    self.qtb[..n].copy_from_slice(&self.atb);
                    rqr.solve_into(&mut self.qtb[..n], x)
                        .map_err(|e| ModelError::Fit(format!("lstsq: ridge solve: {e}")))?;
                }
                Err(e) => return Err(ModelError::Fit(format!("lstsq: {e}"))),
            }
        }

        // Fit error from the already-available A·c predictions (median fit).
        // lint: hot-path begin
        let qm = Quantity::Median.index();
        // lint: allow(panic-free): prepare() sizes values to QUANTITIES * m
        let medians = &self.values[qm * m..(qm + 1) * m];
        // lint: allow(panic-free): prepare() sizes coeffs to QUANTITIES * n
        let c_med = &self.coeffs[qm * n..(qm + 1) * n];
        let mut error = 0.0f64;
        for (i, &median) in medians.iter().enumerate() {
            let mut pred = 0.0;
            for (t, &c) in c_med.iter().enumerate() {
                // lint: allow(panic-free): saved holds n * m entries from prepare()
                pred += c * self.saved[t * m + i];
            }
            error = error.max(relative_error(pred, median));
        }
        // lint: hot-path end

        let mut polys = Vec::with_capacity(QUANTITIES);
        for q in 0..QUANTITIES {
            polys.push(Polynomial::from_shared(
                dim,
                plan.exponents.clone(),
                self.coeffs[q * n..(q + 1) * n].to_vec(),
            )?);
        }

        // Reclaim the design buffer from the consumed factorisation.
        self.design = qr.into_factors().into_data();
        Ok((VectorPolynomial::new(polys)?, error))
    }
}

impl VectorPolynomial {
    /// Fits one polynomial per quantity through the fit engine: equivalent to
    /// [`VectorPolynomial::fit`], but with a single QR factorisation shared
    /// by all five quantities and the workspace's cached plans and buffers.
    ///
    /// `points` are normalised coordinates; `summaries` are the measured
    /// statistics at those points.
    pub fn fit_with(
        ws: &mut FitWorkspace,
        points: &[Vec<f64>],
        summaries: &[Summary],
        degree: u32,
    ) -> Result<VectorPolynomial> {
        if points.len() != summaries.len() {
            return Err(ModelError::Fit(
                "points/summaries length mismatch".to_string(),
            ));
        }
        if points.is_empty() {
            return Err(ModelError::Fit("0 points but 0 values".to_string()));
        }
        let dim = points[0].len();
        if points.iter().any(|p| p.len() != dim) {
            return Err(ModelError::Fit(
                "design_matrix: inconsistent point dimension".to_string(),
            ));
        }
        let m = points.len();
        ws.points.clear();
        ws.points.reserve(m * dim);
        for p in points {
            ws.points.extend_from_slice(p);
        }
        ws.load_values(summaries.iter().copied(), m);
        ws.fit_prepared(dim, m, degree).map(|(vp, _)| vp)
    }
}

impl RegionModel {
    /// Fits a region model through the fit engine: equivalent to
    /// [`RegionModel::fit`] (samples outside the region are ignored), but
    /// with one QR factorisation, cached monomial plans, reused buffers and
    /// the fit error taken from the `A·c` predictions.
    ///
    /// `points` and `summaries` are parallel slices of raw sample points and
    /// their measured statistics.
    pub fn fit_with(
        ws: &mut FitWorkspace,
        region: Region,
        points: &[Vec<usize>],
        summaries: &[Summary],
        degree: u32,
    ) -> Result<RegionModel> {
        let m = prepare_region(ws, &region, points, summaries)?;
        let (poly, error) = ws.fit_prepared(region.dim(), m, degree)?;
        Ok(RegionModel {
            region,
            poly,
            error,
            samples_used: m,
            revision: 0,
        })
    }

    /// [`RegionModel::fit_with`] with the Modeler's degree fallback folded
    /// in: if the requested degree cannot be fitted (typically too few
    /// distinct samples in a fringe region), the fit is retried at degree 0
    /// on the **already filtered and normalised** buffers instead of
    /// re-preparing the sample set from scratch.
    ///
    /// Errors only when no sample lies inside the region (the constant fit
    /// succeeds with a single sample).
    pub fn fit_with_fallback(
        ws: &mut FitWorkspace,
        region: Region,
        points: &[Vec<usize>],
        summaries: &[Summary],
        degree: u32,
    ) -> Result<RegionModel> {
        let m = prepare_region(ws, &region, points, summaries)?;
        let dim = region.dim();
        let (poly, error) = match ws.fit_prepared(dim, m, degree) {
            Ok(fit) => fit,
            Err(_) => ws.fit_prepared(dim, m, 0)?,
        };
        Ok(RegionModel {
            region,
            poly,
            error,
            samples_used: m,
            revision: 0,
        })
    }
}

/// Filters the samples to the region and loads normalised coordinates and
/// quantity values into the workspace buffers; returns the in-region count.
fn prepare_region(
    ws: &mut FitWorkspace,
    region: &Region,
    points: &[Vec<usize>],
    summaries: &[Summary],
) -> Result<usize> {
    if points.len() != summaries.len() {
        return Err(ModelError::Fit(
            "points/summaries length mismatch".to_string(),
        ));
    }
    ws.points.clear();
    let mut kept = std::mem::take(&mut ws.kept);
    kept.clear();
    for (p, s) in points.iter().zip(summaries) {
        if !region.contains(p) {
            continue;
        }
        // Same arithmetic as `Region::normalize`, written into the flat buffer.
        for (d, &pd) in p.iter().enumerate() {
            let extent = region.extent(d);
            ws.points.push(if extent == 0 {
                0.0
            } else {
                (pd as f64 - region.lo()[d] as f64) / extent as f64
            });
        }
        kept.push(*s);
    }
    let m = kept.len();
    if m == 0 {
        ws.kept = kept;
        return Err(ModelError::NotEnoughSamples { have: 0, need: 1 });
    }
    ws.load_values(kept.iter().copied(), m);
    ws.kept = kept;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_summary(p: &[usize]) -> Summary {
        let x = p[0] as f64;
        let y = p.get(1).map(|&v| v as f64).unwrap_or(0.0);
        let median = 1000.0 + 2.0 * x + 3.0 * y + 0.01 * x * y;
        Summary {
            min: median * 0.95,
            mean: median * 1.01,
            median,
            max: median * 1.10,
            std_dev: median * 0.02,
            count: 10,
        }
    }

    fn grid(region: &Region, per_dim: usize) -> (Vec<Vec<usize>>, Vec<Summary>) {
        let points = region.sample_grid(per_dim, 8);
        let summaries = points.iter().map(|p| fake_summary(p)).collect();
        (points, summaries)
    }

    #[test]
    fn engine_fit_matches_reference_fit() {
        let region = Region::new(vec![8, 8], vec![512, 512]);
        let (points, summaries) = grid(&region, 5);
        let pairs: Vec<(Vec<usize>, Summary)> = points
            .iter()
            .cloned()
            .zip(summaries.iter().copied())
            .collect();
        let reference = RegionModel::fit(region.clone(), &pairs, 2).unwrap();
        let mut ws = FitWorkspace::new();
        let engine = RegionModel::fit_with(&mut ws, region, &points, &summaries, 2).unwrap();
        assert_eq!(engine.samples_used, reference.samples_used);
        assert!((engine.error - reference.error).abs() < 1e-12);
        for (pe, pr) in engine
            .poly
            .polynomials()
            .iter()
            .zip(reference.poly.polynomials())
        {
            assert_eq!(pe.exponents(), pr.exponents());
            for (a, b) in pe.coefficients().iter().zip(pr.coefficients()) {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn workspace_is_reusable_across_shapes() {
        let mut ws = FitWorkspace::new();
        for (lo, hi, per_dim, degree) in [
            (vec![8usize, 8], vec![512usize, 512], 5, 2),
            (vec![8], vec![1024], 6, 2),
            (vec![8, 8, 8], vec![128, 128, 128], 3, 1),
            (vec![8, 8], vec![512, 512], 4, 0),
        ] {
            let region = Region::new(lo, hi);
            let (points, summaries) = grid(&region, per_dim);
            let model =
                RegionModel::fit_with(&mut ws, region, &points, &summaries, degree).unwrap();
            assert!(model.error.is_finite());
        }
        // (2, 2), (1, 2), (3, 1), (2, 0): four distinct plans.
        assert_eq!(ws.cached_plans(), 4);
    }

    #[test]
    fn fallback_fits_constant_when_samples_are_scarce() {
        let region = Region::new(vec![8, 8], vec![24, 24]);
        let points = vec![vec![8, 8], vec![16, 16], vec![24, 24]];
        let summaries: Vec<Summary> = points.iter().map(|p| fake_summary(p)).collect();
        let mut ws = FitWorkspace::new();
        // 3 samples < 6 monomials: the direct fit fails, ...
        assert!(matches!(
            RegionModel::fit_with(&mut ws, region.clone(), &points, &summaries, 2),
            Err(ModelError::NotEnoughSamples { have: 3, need: 6 })
        ));
        // ... the folded fallback succeeds at degree 0.
        let model =
            RegionModel::fit_with_fallback(&mut ws, region, &points, &summaries, 2).unwrap();
        assert_eq!(model.poly.polynomials()[0].term_count(), 1);
        assert_eq!(model.samples_used, 3);
    }

    #[test]
    fn fallback_requires_at_least_one_in_region_sample() {
        let region = Region::new(vec![8], vec![64]);
        let mut ws = FitWorkspace::new();
        assert!(matches!(
            RegionModel::fit_with_fallback(
                &mut ws,
                region,
                &[vec![512]],
                &[Summary::exact(1.0)],
                2
            ),
            Err(ModelError::NotEnoughSamples { have: 0, need: 1 })
        ));
    }

    #[test]
    fn vector_fit_with_validates_input() {
        let mut ws = FitWorkspace::new();
        assert!(VectorPolynomial::fit_with(&mut ws, &[], &[], 1).is_err());
        assert!(VectorPolynomial::fit_with(
            &mut ws,
            &[vec![0.0]],
            &[Summary::exact(1.0), Summary::exact(2.0)],
            1
        )
        .is_err());
        assert!(VectorPolynomial::fit_with(
            &mut ws,
            &[vec![0.0], vec![0.5, 0.5]],
            &[Summary::exact(1.0), Summary::exact(2.0)],
            0
        )
        .is_err());
    }

    #[test]
    fn zero_dimensional_constant_fit_matches_reference() {
        // Dim-0 points (a constant fit with no parameters) worked on the
        // reference path before the engine existed; both paths must agree.
        let points = vec![vec![], vec![], vec![]];
        let summaries = vec![
            Summary::exact(2.0),
            Summary::exact(4.0),
            Summary::exact(6.0),
        ];
        let reference = VectorPolynomial::fit(&points, &summaries, 2).unwrap();
        let mut ws = FitWorkspace::new();
        let engine = VectorPolynomial::fit_with(&mut ws, &points, &summaries, 2).unwrap();
        assert_eq!(reference, engine);
        assert_eq!(engine.polynomials()[0].coefficients(), &[4.0]);
    }
}
