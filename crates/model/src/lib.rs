//! # dla-model
//!
//! Statistical performance models for BLAS/LAPACK building blocks (paper
//! Section III-B).
//!
//! A model represents the performance of one routine, for a fixed
//! implementation, machine, thread count and memory-locality scenario, as a
//! function of the routine's arguments.  Internally:
//!
//! * only a subset of the arguments are model parameters: the **flags** and
//!   the **integer sizes** (scalars, data pointers and leading dimensions are
//!   dropped for the reasons discussed in the paper);
//! * each combination of flag values gets its own **submodel**
//!   ([`PiecewiseModel`]) over the integer parameter space — with the
//!   exception of the `diag` flag, whose influence is minor and which is
//!   therefore folded into a single submodel;
//! * a submodel is a **piecewise, vector-valued, multivariate polynomial**:
//!   the integer parameter space is covered by axis-aligned [`Region`]s, each
//!   carrying one low-order [`Polynomial`] per statistical quantity
//!   (min / mean / median / max / standard deviation);
//! * evaluating a model at a routine call extracts the parameters, selects the
//!   submodel for the flag combination, finds the most accurate region
//!   containing the integer point and evaluates its polynomials, yielding a
//!   [`Summary`](dla_mat::stats::Summary) estimate.
//!
//! Models are stored in a [`ModelRepository`], which persists to a plain-text,
//! versioned format so that a model built once can be reused by later runs —
//! the paper's "repository of models".  For concurrent serving,
//! [`SharedRepository`] wraps a repository in an atomically hot-swappable
//! handle: readers take cheap `Arc` snapshots while a rebuilt repository can
//! be swapped in underneath them.
//!
//! Evaluation has two implementations: the allocating *reference* path on the
//! model types themselves ([`PiecewiseModel::eval`],
//! [`RoutineModel::estimate`]), and the **compiled evaluation engine**
//! ([`CompiledRepository`]) which the serving layers use — repositories are
//! compiled once (at build or hot-swap time) into indexed, fused,
//! zero-allocation evaluators that answer the same queries several times
//! faster.  The reference path is kept as the equivalence baseline for tests.
//!
//! Fitting mirrors that split: the reference fit lives on the model types
//! ([`VectorPolynomial::fit`], [`RegionModel::fit`]), and the **compiled fit
//! engine** ([`FitWorkspace`]) — cached monomial plans, one QR factorisation
//! shared by all five quantity solves, recycled buffers — is what the
//! Modeler's construction loop drives.  The two are equivalence-tested
//! against each other in `crates/core/tests/fit_equivalence.rs`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod binfmt;
mod eval;
mod fit;
mod piecewise;
mod poly;
mod region;
mod repo;
mod routine_model;
mod shared;
pub mod sync;
mod telemetry;
mod validate;

pub use eval::{
    BatchPoints, CompiledPiecewise, CompiledRepository, CompiledRoutineModel,
    CompiledVectorPolynomial, RoutineTable, MAX_DIM,
};
pub use fit::FitWorkspace;
pub use piecewise::{error_order, PiecewiseModel, RegionModel, VectorPolynomial};
pub use poly::{monomial_exponents, Polynomial};
pub use region::Region;
pub use repo::{ModelKey, ModelRepository, RepositoryFormat};
pub use routine_model::{submodel_key, submodel_key_fixed, FlagKey, RoutineModel};
pub use shared::{LastGoodSnapshot, SharedRepository};
pub use telemetry::{HotRegion, RefinementReport, TelemetryCounters};
pub use validate::RepositoryValidator;

/// Errors raised while building, evaluating or (de)serialising models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Not enough samples to fit the requested polynomial.
    NotEnoughSamples {
        /// Samples available.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// The requested point lies outside the model's parameter space.
    OutOfDomain(String),
    /// The requested submodel (flag combination) does not exist.
    MissingSubmodel(String),
    /// Least-squares fitting failed.
    Fit(String),
    /// A repository file could not be parsed.
    Parse(String),
    /// A repository could not be serialised (e.g. a machine id the text
    /// format cannot represent).
    Serialize(String),
    /// An I/O error occurred while reading or writing the repository.
    Io(String),
    /// A repository failed pre-publication validation (see
    /// [`RepositoryValidator`]) and must not be served.
    Validation(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NotEnoughSamples { have, need } => {
                write!(f, "not enough samples: have {have}, need {need}")
            }
            ModelError::OutOfDomain(d) => write!(f, "point outside model domain: {d}"),
            ModelError::MissingSubmodel(d) => write!(f, "missing submodel: {d}"),
            ModelError::Fit(d) => write!(f, "fit failed: {d}"),
            ModelError::Parse(d) => write!(f, "parse error: {d}"),
            ModelError::Serialize(d) => write!(f, "serialisation error: {d}"),
            ModelError::Io(d) => write!(f, "i/o error: {d}"),
            ModelError::Validation(d) => write!(f, "validation failed: {d}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
