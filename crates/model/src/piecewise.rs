//! Piecewise, vector-valued polynomial models.

use std::cmp::Ordering;

use dla_mat::stats::{Quantity, Summary};

use crate::{ModelError, Polynomial, Region, Result};

/// Ascending total order on fit errors with `NaN` sorted last.
///
/// A region whose fit degenerated to a `NaN` error must never be preferred
/// over a region with a finite error, and sorting by error must not panic
/// mid-comparison.  This comparator is shared by [`PiecewiseModel::eval`],
/// the compiled evaluation engine and the Modeler's region sort.  Note that
/// plain [`f64::total_cmp`] is not enough: it orders *negative* `NaN` before
/// every number.
pub fn error_order(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.total_cmp(&b),
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (true, true) => Ordering::Equal,
    }
}

/// One polynomial per statistical quantity (min / mean / median / max / std).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorPolynomial {
    polys: Vec<Polynomial>,
}

impl VectorPolynomial {
    /// Creates a vector polynomial from one polynomial per quantity, in
    /// [`Quantity::ALL`] order.
    pub fn new(polys: Vec<Polynomial>) -> Result<VectorPolynomial> {
        if polys.len() != Quantity::ALL.len() {
            return Err(ModelError::Fit(format!(
                "expected {} polynomials, got {}",
                Quantity::ALL.len(),
                polys.len()
            )));
        }
        Ok(VectorPolynomial { polys })
    }

    /// Fits one polynomial per quantity to the given samples.
    ///
    /// `points` are normalised coordinates; `summaries` are the measured
    /// statistics at those points.
    pub fn fit(
        points: &[Vec<f64>],
        summaries: &[Summary],
        degree: u32,
    ) -> Result<VectorPolynomial> {
        if points.len() != summaries.len() {
            return Err(ModelError::Fit(
                "points/summaries length mismatch".to_string(),
            ));
        }
        let mut polys = Vec::with_capacity(Quantity::ALL.len());
        for q in Quantity::ALL {
            let values: Vec<f64> = summaries.iter().map(|s| s.get(q)).collect();
            polys.push(Polynomial::fit(points, &values, degree)?);
        }
        Ok(VectorPolynomial { polys })
    }

    /// Evaluates every quantity polynomial at the normalised point.
    ///
    /// All quantities are clamped to be non-negative: the modelled values are
    /// execution times, so a polynomial dipping below zero between its sample
    /// points is a fitting artefact, not a meaningful prediction.  `NaN`
    /// values are preserved (`f64::max` would silently turn them into `0.0`,
    /// i.e. a degenerate fit would masquerade as a zero-cost prediction);
    /// downstream ranking sorts `NaN` predictions last.
    // lint: allow(panic-free): Quantity::index() is bounded by the five-quantity layout
    pub fn eval(&self, point: &[f64]) -> Summary {
        let mut values = [0.0; 5];
        for (q, poly) in Quantity::ALL.iter().zip(self.polys.iter()) {
            let value = poly.eval(point);
            values[q.index()] = if value.is_nan() {
                value
            } else {
                value.max(0.0)
            };
        }
        Summary::from_quantities(&values)
    }

    /// Access to the per-quantity polynomials.
    pub fn polynomials(&self) -> &[Polynomial] {
        &self.polys
    }

    /// The polynomial for one quantity.
    pub fn polynomial(&self, q: Quantity) -> &Polynomial {
        &self.polys[q.index()]
    }
}

/// One region of the parameter space together with its fitted polynomials.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionModel {
    /// The covered region (raw, unnormalised coordinates).
    pub region: Region,
    /// The fitted vector polynomial over normalised region coordinates.
    pub poly: VectorPolynomial,
    /// Maximum relative error of the *median* quantity over the fit samples
    /// (the Modeler's accuracy measure).
    pub error: f64,
    /// Number of distinct sample points used to fit this region.
    pub samples_used: usize,
    /// Provenance / age: how many online-refinement rebuilds produced this
    /// region (`0` = initial offline build, `n` = the region was re-fitted
    /// `n` times by [`OnlineRefiner`]-style targeted refinement).  This is
    /// runtime-only bookkeeping: the repository text format does not persist
    /// it, so reloaded repositories start back at revision 0.
    ///
    /// [`OnlineRefiner`]: https://docs.rs/dla-modeler
    pub revision: u32,
}

impl RegionModel {
    /// Fits a region model to samples (raw points paired with summaries).
    ///
    /// Only samples lying inside the region are used.
    pub fn fit(
        region: Region,
        samples: &[(Vec<usize>, Summary)],
        degree: u32,
    ) -> Result<RegionModel> {
        let in_region: Vec<&(Vec<usize>, Summary)> =
            samples.iter().filter(|(p, _)| region.contains(p)).collect();
        let points: Vec<Vec<f64>> = in_region.iter().map(|(p, _)| region.normalize(p)).collect();
        let summaries: Vec<Summary> = in_region.iter().map(|(_, s)| *s).collect();
        if points.is_empty() {
            return Err(ModelError::NotEnoughSamples { have: 0, need: 1 });
        }
        let poly = VectorPolynomial::fit(&points, &summaries, degree)?;
        let medians: Vec<f64> = summaries.iter().map(|s| s.median).collect();
        let error = poly
            .polynomial(Quantity::Median)
            .max_relative_error(&points, &medians);
        Ok(RegionModel {
            region,
            poly,
            error,
            samples_used: points.len(),
            revision: 0,
        })
    }

    /// Evaluates the region model at a raw (unnormalised) point.
    pub fn eval(&self, point: &[usize]) -> Summary {
        self.poly.eval(&self.region.normalize(point))
    }
}

/// A piecewise model covering the integer parameter space of one submodel
/// (one flag combination of one routine).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseModel {
    /// The full parameter space the model is defined over.
    pub space: Region,
    /// The regions covering the space (they may overlap; evaluation picks the
    /// most accurate region containing the query point).
    pub regions: Vec<RegionModel>,
    /// Total number of distinct sample points used to build the model.
    pub total_samples: usize,
}

impl PiecewiseModel {
    /// Creates a piecewise model from fitted regions.
    pub fn new(space: Region, regions: Vec<RegionModel>, total_samples: usize) -> PiecewiseModel {
        PiecewiseModel {
            space,
            regions,
            total_samples,
        }
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Average of the per-region fit errors, weighted by region extent along
    /// each dimension (a simple proxy for area coverage).
    pub fn average_error(&self) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for r in &self.regions {
            let w: f64 = (0..r.region.dim())
                .map(|d| (r.region.extent(d) + 1) as f64)
                .product();
            weighted += r.error * w;
            total += w;
        }
        weighted / total
    }

    /// Evaluates the model at a raw integer point.
    ///
    /// If several regions contain the point, the most accurate one (smallest
    /// fit error) is used, as in the paper.  Points outside every region but
    /// inside the parameter space fall back to the nearest region; points
    /// outside the space return an error.
    pub fn eval(&self, point: &[usize]) -> Result<Summary> {
        self.eval_traced(point).map(|(summary, _)| summary)
    }

    /// [`PiecewiseModel::eval`], additionally reporting *which* region
    /// answered the query (its index into [`PiecewiseModel::regions`]) — the
    /// hook the serving layer's per-region telemetry is built on.
    pub fn eval_traced(&self, point: &[usize]) -> Result<(Summary, usize)> {
        if self.regions.is_empty() {
            return Err(ModelError::OutOfDomain("model has no regions".to_string()));
        }
        if point.len() != self.space.dim() {
            return Err(ModelError::OutOfDomain(format!(
                "point arity {} does not match model dimension {}",
                point.len(),
                self.space.dim()
            )));
        }
        if let Some((i, best)) = self
            .regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.region.contains(point))
            .min_by(|(_, a), (_, b)| error_order(a.error, b.error))
        {
            return Ok((best.eval(point), i));
        }
        // Fall back to the region whose centre is closest to the point; this
        // covers query points that slip between region boundaries due to grid
        // snapping, and mild extrapolation right outside the space.
        let (i, best) = self
            .regions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = region_distance(&a.region, point);
                let db = region_distance(&b.region, point);
                da.total_cmp(&db)
            })
            // lint: allow(unwrap): PiecewiseModel construction guarantees at least one region
            .expect("non-empty regions");
        Ok((best.eval(point), i))
    }

    /// Returns `true` if every probe point of a `per_dim` grid over the space
    /// lies inside at least one region.
    pub fn covers_space(&self, per_dim: usize) -> bool {
        self.space
            .sample_grid(per_dim, 1)
            .iter()
            .all(|p| self.regions.iter().any(|r| r.region.contains(p)))
    }
}

fn region_distance(region: &Region, point: &[usize]) -> f64 {
    let mut acc = 0.0;
    for (&pt, (&rlo, &rhi)) in point.iter().zip(region.lo().iter().zip(region.hi())) {
        let p = pt as f64;
        let lo = rlo as f64;
        let hi = rhi as f64;
        let dd = if p < lo {
            lo - p
        } else if p > hi {
            p - hi
        } else {
            0.0
        };
        acc += dd * dd;
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic "measurement": a smooth function of the point.
    fn fake_summary(p: &[usize]) -> Summary {
        let x = p[0] as f64;
        let y = p.get(1).map(|&v| v as f64).unwrap_or(0.0);
        let median = 1000.0 + 2.0 * x + 3.0 * y + 0.01 * x * y;
        Summary {
            min: median * 0.95,
            mean: median * 1.01,
            median,
            max: median * 1.10,
            std_dev: median * 0.02,
            count: 10,
        }
    }

    fn samples_on(region: &Region, per_dim: usize) -> Vec<(Vec<usize>, Summary)> {
        region
            .sample_grid(per_dim, 8)
            .into_iter()
            .map(|p| {
                let s = fake_summary(&p);
                (p, s)
            })
            .collect()
    }

    #[test]
    fn vector_polynomial_roundtrip() {
        let region = Region::new(vec![8, 8], vec![512, 512]);
        let samples = samples_on(&region, 4);
        let points: Vec<Vec<f64>> = samples.iter().map(|(p, _)| region.normalize(p)).collect();
        let sums: Vec<Summary> = samples.iter().map(|(_, s)| *s).collect();
        let vp = VectorPolynomial::fit(&points, &sums, 2).unwrap();
        let est = vp.eval(&region.normalize(&[256, 256]));
        let truth = fake_summary(&[256, 256]);
        assert!((est.median - truth.median).abs() / truth.median < 0.05);
        assert!(est.std_dev >= 0.0);
        assert_eq!(vp.polynomials().len(), 5);
    }

    #[test]
    fn vector_polynomial_wrong_arity_errors() {
        assert!(VectorPolynomial::new(vec![Polynomial::zero(1); 3]).is_err());
        assert!(VectorPolynomial::new(vec![Polynomial::zero(1); 5]).is_ok());
    }

    #[test]
    fn region_model_fit_and_eval() {
        let region = Region::new(vec![8, 8], vec![1024, 1024]);
        let samples = samples_on(&region, 5);
        let rm = RegionModel::fit(region.clone(), &samples, 2).unwrap();
        assert!(rm.error < 0.05, "error {}", rm.error);
        assert_eq!(rm.samples_used, samples.len());
        let est = rm.eval(&[500, 700]);
        let truth = fake_summary(&[500, 700]);
        assert!((est.median - truth.median).abs() / truth.median < 0.05);
    }

    #[test]
    fn region_model_ignores_outside_samples() {
        let region = Region::new(vec![8], vec![128]);
        let mut samples = samples_on(&region, 6);
        // Add garbage samples outside the region: they must not affect the fit.
        samples.push((vec![4096], Summary::exact(1.0)));
        let rm = RegionModel::fit(region, &samples, 2).unwrap();
        assert!(rm.error < 0.05);
        assert_eq!(rm.samples_used, samples.len() - 1);
    }

    #[test]
    fn region_model_fit_requires_samples() {
        let region = Region::new(vec![8], vec![128]);
        assert!(matches!(
            RegionModel::fit(region, &[], 2),
            Err(ModelError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn piecewise_picks_most_accurate_region() {
        let space = Region::new(vec![8, 8], vec![1024, 1024]);
        let left = Region::new(vec![8, 8], vec![512, 1024]);
        let right = Region::new(vec![512, 8], vec![1024, 1024]);
        let mut rm_left = RegionModel::fit(left, &samples_on(&space, 5), 2).unwrap();
        let mut rm_right = RegionModel::fit(right, &samples_on(&space, 5), 2).unwrap();
        rm_left.error = 0.01;
        rm_right.error = 0.2;
        let model = PiecewiseModel::new(space, vec![rm_left.clone(), rm_right], 50);
        // Point in the overlap column x = 512: the more accurate (left) wins.
        let est = model.eval(&[512, 512]).unwrap();
        let expected = rm_left.eval(&[512, 512]);
        assert_eq!(est, expected);
        assert_eq!(model.region_count(), 2);
        assert!(model.covers_space(5));
    }

    #[test]
    fn nan_error_region_never_beats_a_finite_one() {
        let space = Region::new(vec![8, 8], vec![1024, 1024]);
        let mut rm_nan = RegionModel::fit(space.clone(), &samples_on(&space, 5), 2).unwrap();
        let mut rm_ok = RegionModel::fit(space.clone(), &samples_on(&space, 5), 2).unwrap();
        rm_nan.error = f64::NAN;
        rm_ok.error = 0.3;
        // Regression: selecting the best of two overlapping regions used to
        // panic in `partial_cmp(...).expect("no NaN errors")` when one fit
        // error was NaN; now the NaN region sorts last in either order.
        for regions in [
            vec![rm_nan.clone(), rm_ok.clone()],
            vec![rm_ok.clone(), rm_nan.clone()],
        ] {
            let model = PiecewiseModel::new(space.clone(), regions, 50);
            let est = model.eval(&[512, 512]).unwrap();
            assert_eq!(est, rm_ok.eval(&[512, 512]));
        }
        // All-NaN errors still evaluate (there is no better region to prefer).
        let model = PiecewiseModel::new(space.clone(), vec![rm_nan.clone()], 50);
        assert!(model.eval(&[512, 512]).is_ok());
        // The comparator itself: ascending, NaN last, no panic.
        assert_eq!(error_order(0.1, 0.2), std::cmp::Ordering::Less);
        assert_eq!(error_order(f64::NAN, 0.2), std::cmp::Ordering::Greater);
        assert_eq!(error_order(0.2, f64::NAN), std::cmp::Ordering::Less);
        assert_eq!(error_order(-f64::NAN, 0.2), std::cmp::Ordering::Greater);
        assert_eq!(error_order(f64::NAN, f64::NAN), std::cmp::Ordering::Equal);
    }

    #[test]
    fn piecewise_falls_back_to_nearest_region() {
        let space = Region::new(vec![8], vec![1024]);
        let covered = Region::new(vec![8], vec![512]);
        let rm = RegionModel::fit(covered, &samples_on(&space, 9), 2).unwrap();
        let model = PiecewiseModel::new(space, vec![rm], 9);
        // 900 is inside the space but outside the single region; the fallback
        // must still produce a finite estimate.
        let est = model.eval(&[900]).unwrap();
        assert!(est.median.is_finite());
        assert!(!model.covers_space(9));
    }

    #[test]
    fn piecewise_error_cases() {
        let space = Region::new(vec![8], vec![64]);
        let empty = PiecewiseModel::new(space.clone(), vec![], 0);
        assert!(empty.eval(&[16]).is_err());
        assert_eq!(empty.average_error(), 0.0);
        let rm = RegionModel::fit(space.clone(), &samples_on(&space, 8), 2).unwrap();
        let model = PiecewiseModel::new(space, vec![rm], 8);
        assert!(model.eval(&[16, 16]).is_err());
        assert!(model.average_error() >= 0.0);
    }
}
