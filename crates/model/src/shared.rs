//! Concurrent sharing of a model repository.
//!
//! The paper treats the repository as a long-lived asset: models are built
//! once and then serve arbitrarily many downstream prediction queries.  For a
//! multi-threaded server that shape needs two properties the plain
//! [`ModelRepository`] does not provide: cheap read access from many threads
//! at once, and the ability to atomically replace the whole repository with a
//! freshly rebuilt one without disturbing in-flight readers.
//!
//! [`SharedRepository`] provides both with an `ArcSwap`-style
//! `RwLock<Arc<CompiledRepository>>`: readers take a [`snapshot`] (the source
//! repository) or a [`compiled`] handle — `Arc` clones held entirely outside
//! the lock — and writers [`swap`] in a new repository.  Repositories are run
//! through the compiled evaluation engine **here**, once per swap, so every
//! reader gets the indexed, zero-allocation evaluators for free and no query
//! ever pays compilation latency.  Readers holding an old snapshot keep a
//! consistent view until they drop it.
//!
//! Concurrency primitives come from the [`crate::sync`] facade (model-checked
//! under `--cfg interleave`; see `tests/interleave_models.rs`).  The facade's
//! locks are non-poisoning: a panicking writer can only abandon its
//! replacement `Arc`, never half-apply it, so later readers and writers
//! safely continue on the previous repository instead of unwinding the
//! serving tier.
//!
//! [`snapshot`]: SharedRepository::snapshot
//! [`compiled`]: SharedRepository::compiled
//! [`swap`]: SharedRepository::swap

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, RwLock};
use crate::{CompiledRepository, ModelRepository};

/// An atomically swappable, shareable handle to a [`ModelRepository`] and its
/// compiled form.
#[derive(Debug)]
pub struct SharedRepository {
    inner: RwLock<Arc<CompiledRepository>>,
    generation: AtomicU64,
}

impl SharedRepository {
    /// Wraps a repository for concurrent sharing, compiling it for the fast
    /// evaluation path.
    pub fn new(repository: ModelRepository) -> SharedRepository {
        SharedRepository {
            inner: RwLock::new(Arc::new(CompiledRepository::compile(repository))),
            generation: AtomicU64::new(0),
        }
    }

    /// The current repository, as a cheap `Arc` clone.
    ///
    /// The snapshot stays valid (and internally consistent) even if another
    /// thread swaps in a new repository afterwards.
    pub fn snapshot(&self) -> Arc<ModelRepository> {
        Arc::clone(self.compiled().source())
    }

    /// The current repository's compiled form, as a cheap `Arc` clone.
    pub fn compiled(&self) -> Arc<CompiledRepository> {
        Arc::clone(&self.inner.read())
    }

    /// Atomically replaces the repository, returning the previous one.
    ///
    /// The replacement is compiled before the lock is taken, so in-flight
    /// readers are never blocked on compilation; readers holding a
    /// [`snapshot`](SharedRepository::snapshot) are unaffected, and new
    /// readers see the replacement.
    pub fn swap(&self, repository: ModelRepository) -> Arc<ModelRepository> {
        let compiled = Arc::new(CompiledRepository::compile(repository));
        let mut guard = self.inner.write();
        // ordering: Release pairs with the Acquire load in `generation()`.
        // The repository contents are ordered by the RwLock, but the tag is
        // read lock-free: Release guarantees a thread observing the bumped
        // tag also observes everything published before it.  The bump sits
        // inside the write lock so a tag can never be observed together with
        // a repository older than the one it tags (readers of `inner` are
        // held out until the replacement below lands).
        self.generation.fetch_add(1, Ordering::Release);
        let previous = std::mem::replace(&mut *guard, compiled);
        Arc::clone(previous.source())
    }

    /// Atomically replaces the repository with an **already compiled** one,
    /// returning the previous source — the zero-recompilation entry point the
    /// binary loader feeds (see [`crate::binfmt::decode`]).
    pub fn swap_compiled(&self, compiled: Arc<CompiledRepository>) -> Arc<ModelRepository> {
        let mut guard = self.inner.write();
        // ordering: Release — same pairing and same reasoning as the bump in
        // `swap` above; only the compilation step differs (none here).
        self.generation.fetch_add(1, Ordering::Release);
        let previous = std::mem::replace(&mut *guard, compiled);
        Arc::clone(previous.source())
    }

    /// Merges `other` into the current repository, recompiles, and swaps the
    /// result in.
    ///
    /// Like [`swap`](SharedRepository::swap), the merge and its compilation
    /// run *outside* the lock so readers are never blocked on compilation; a
    /// generation check under the write lock detects a racing writer, in
    /// which case the merge is redone against the newer repository.
    pub fn merge(&self, other: ModelRepository) {
        loop {
            // Generation first: if a writer lands between the two reads, the
            // check under the write lock fails and the merge is redone.
            let generation = self.generation();
            let base = self.compiled();
            let mut merged = (**base.source()).clone();
            merged.merge(other.clone());
            let compiled = Arc::new(CompiledRepository::compile(merged));
            let mut guard = self.inner.write();
            // ordering: Acquire pairs with the Release bumps.  Holding the
            // write lock already orders this load after any previous holder's
            // bump, so Relaxed would be correct too; Acquire keeps the
            // tag a self-contained publication point instead of leaning on
            // the lock, at no measurable cost off the hot path.
            if self.generation.load(Ordering::Acquire) != generation {
                // A concurrent swap/merge landed first: redo against it.
                continue;
            }
            // ordering: Release — same pairing and same reasoning as the
            // bump in `swap` above.
            self.generation.fetch_add(1, Ordering::Release);
            *guard = compiled;
            return;
        }
    }

    /// A counter incremented on every [`swap`](SharedRepository::swap) or
    /// [`merge`](SharedRepository::merge); caches layered on top use it to
    /// detect stale entries.
    pub fn generation(&self) -> u64 {
        // ordering: Acquire pairs with the Release bumps in swap/merge, so a
        // caller that observes generation G also observes everything the
        // swapper published before bumping to G.  The service's
        // read-generation / do-work / re-check-generation idiom needs exactly
        // this: an unchanged tag proves no swap *completed* in between.
        self.generation.load(Ordering::Acquire)
    }
}

impl Default for SharedRepository {
    fn default() -> SharedRepository {
        SharedRepository::new(ModelRepository::new())
    }
}

/// A retention slot for the most recent **known-good** compiled snapshot of a
/// serving shard — the degraded-serving fallback of the fleet tier.
///
/// The fleet's query path retains `(generation, snapshot)` after every
/// successful fresh answer; when the shard later trips its circuit breaker or
/// misses its deadline, queries are answered from the retained snapshot and
/// explicitly tagged *stale*.  The slot is monotone in the generation:
/// [`retain`](LastGoodSnapshot::retain) only replaces the held snapshot with
/// one of a **newer** generation, so two racing retainers can never regress
/// the slot to an older repository (the generation check runs under the write
/// lock; model-checked under `--cfg interleave` in
/// `dla-predict/tests/interleave_fleet.rs`).
///
/// Like the rest of the serving tier, the lock comes from the [`crate::sync`]
/// facade and is non-poisoning: a panicking retainer can only abandon its
/// replacement pair, never half-apply it, so readers keep getting a
/// consistent — at worst slightly older — snapshot.
#[derive(Debug, Default)]
pub struct LastGoodSnapshot {
    slot: RwLock<Option<(u64, Arc<CompiledRepository>)>>,
}

impl LastGoodSnapshot {
    /// An empty slot (nothing known-good yet).
    pub fn new() -> LastGoodSnapshot {
        LastGoodSnapshot::default()
    }

    /// Retains `snapshot` as the last-good state of generation `generation`,
    /// unless the slot already holds a snapshot of the same or a newer
    /// generation.  Returns `true` when the slot was updated.
    pub fn retain(&self, generation: u64, snapshot: Arc<CompiledRepository>) -> bool {
        // Cheap fast path: most fresh answers come from an unchanged
        // generation, which never needs the write lock.
        if let Some((held, _)) = self.slot.read().as_ref() {
            if *held >= generation {
                return false;
            }
        }
        let mut guard = self.slot.write();
        // Re-check under the write lock: a racing retainer with a newer
        // generation must win regardless of who gets the lock first.
        if let Some((held, _)) = guard.as_ref() {
            if *held >= generation {
                return false;
            }
        }
        *guard = Some((generation, snapshot));
        true
    }

    /// The retained `(generation, snapshot)` pair, if any — a cheap `Arc`
    /// clone, internally consistent (the pair is replaced wholesale).
    pub fn get(&self) -> Option<(u64, Arc<CompiledRepository>)> {
        self.slot
            .read()
            .as_ref()
            .map(|(generation, snapshot)| (*generation, Arc::clone(snapshot)))
    }

    /// The generation of the retained snapshot, if any.
    pub fn generation(&self) -> Option<u64> {
        self.slot.read().as_ref().map(|(generation, _)| *generation)
    }

    /// Drops the retained snapshot (e.g. after the shard's model space
    /// changed incompatibly and stale answers would mislead).
    pub fn clear(&self) {
        *self.slot.write() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_survive_swaps() {
        let shared = SharedRepository::default();
        let before = shared.snapshot();
        assert!(before.is_empty());
        assert_eq!(shared.generation(), 0);
        let old = shared.swap(ModelRepository::new());
        assert!(Arc::ptr_eq(&before, &old));
        assert_eq!(shared.generation(), 1);
        // The old snapshot is still usable after the swap.
        assert!(before.is_empty());
        assert!(!Arc::ptr_eq(&before, &shared.snapshot()));
    }

    #[test]
    fn compiled_handle_tracks_the_source() {
        let shared = SharedRepository::default();
        let compiled = shared.compiled();
        assert!(compiled.is_empty());
        assert!(Arc::ptr_eq(compiled.source(), &shared.snapshot()));
        shared.swap(ModelRepository::new());
        // A fresh handle follows the swap; the old one keeps its view.
        assert!(!Arc::ptr_eq(compiled.source(), &shared.snapshot()));
    }

    #[test]
    fn concurrent_snapshots_and_swaps_do_not_panic() {
        let shared = Arc::new(SharedRepository::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snap = shared.snapshot();
                        assert!(snap.is_empty());
                    }
                });
            }
            let swapper = Arc::clone(&shared);
            scope.spawn(move || {
                for _ in 0..50 {
                    let _ = swapper.swap(ModelRepository::new());
                }
            });
        });
        assert_eq!(shared.generation(), 50);
    }

    #[test]
    fn shared_repository_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<SharedRepository>();
        assert_sync::<LastGoodSnapshot>();
    }

    #[test]
    fn last_good_slot_is_monotone_in_the_generation() {
        let slot = LastGoodSnapshot::new();
        assert!(slot.get().is_none());
        assert_eq!(slot.generation(), None);

        let old = Arc::new(CompiledRepository::compile(ModelRepository::new()));
        let new = Arc::new(CompiledRepository::compile(ModelRepository::new()));
        assert!(slot.retain(3, Arc::clone(&old)));
        assert_eq!(slot.generation(), Some(3));

        // Same and older generations are refused.
        assert!(!slot.retain(3, Arc::clone(&new)));
        assert!(!slot.retain(2, Arc::clone(&new)));
        let (generation, held) = slot.get().expect("slot holds a snapshot");
        assert_eq!(generation, 3);
        assert!(Arc::ptr_eq(&held, &old));

        // Newer generations replace.
        assert!(slot.retain(4, Arc::clone(&new)));
        let (generation, held) = slot.get().expect("slot holds a snapshot");
        assert_eq!(generation, 4);
        assert!(Arc::ptr_eq(&held, &new));

        slot.clear();
        assert!(slot.get().is_none());
    }
}
