//! Concurrent sharing of a model repository.
//!
//! The paper treats the repository as a long-lived asset: models are built
//! once and then serve arbitrarily many downstream prediction queries.  For a
//! multi-threaded server that shape needs two properties the plain
//! [`ModelRepository`] does not provide: cheap read access from many threads
//! at once, and the ability to atomically replace the whole repository with a
//! freshly rebuilt one without disturbing in-flight readers.
//!
//! [`SharedRepository`] provides both with an `ArcSwap`-style
//! `RwLock<Arc<ModelRepository>>`: readers take a [`snapshot`] — an `Arc`
//! clone, held entirely outside the lock — and writers [`swap`] in a new
//! repository.  Readers holding an old snapshot keep a consistent view until
//! they drop it.
//!
//! [`snapshot`]: SharedRepository::snapshot
//! [`swap`]: SharedRepository::swap

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::ModelRepository;

/// An atomically swappable, shareable handle to a [`ModelRepository`].
#[derive(Debug)]
pub struct SharedRepository {
    inner: RwLock<Arc<ModelRepository>>,
    generation: AtomicU64,
}

impl SharedRepository {
    /// Wraps a repository for concurrent sharing.
    pub fn new(repository: ModelRepository) -> SharedRepository {
        SharedRepository {
            inner: RwLock::new(Arc::new(repository)),
            generation: AtomicU64::new(0),
        }
    }

    /// The current repository, as a cheap `Arc` clone.
    ///
    /// The snapshot stays valid (and internally consistent) even if another
    /// thread swaps in a new repository afterwards.
    pub fn snapshot(&self) -> Arc<ModelRepository> {
        Arc::clone(&self.inner.read().expect("repository lock poisoned"))
    }

    /// Atomically replaces the repository, returning the previous one.
    ///
    /// In-flight readers holding a [`snapshot`](SharedRepository::snapshot)
    /// are unaffected; new readers see the replacement.
    pub fn swap(&self, repository: ModelRepository) -> Arc<ModelRepository> {
        let mut guard = self.inner.write().expect("repository lock poisoned");
        self.generation.fetch_add(1, Ordering::Release);
        std::mem::replace(&mut *guard, Arc::new(repository))
    }

    /// Merges `other` into the current repository and swaps the result in.
    pub fn merge(&self, other: ModelRepository) {
        let mut guard = self.inner.write().expect("repository lock poisoned");
        let mut merged = (**guard).clone();
        merged.merge(other);
        self.generation.fetch_add(1, Ordering::Release);
        *guard = Arc::new(merged);
    }

    /// A counter incremented on every [`swap`](SharedRepository::swap) or
    /// [`merge`](SharedRepository::merge); caches layered on top use it to
    /// detect stale entries.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

impl Default for SharedRepository {
    fn default() -> SharedRepository {
        SharedRepository::new(ModelRepository::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_survive_swaps() {
        let shared = SharedRepository::default();
        let before = shared.snapshot();
        assert!(before.is_empty());
        assert_eq!(shared.generation(), 0);
        let old = shared.swap(ModelRepository::new());
        assert!(Arc::ptr_eq(&before, &old));
        assert_eq!(shared.generation(), 1);
        // The old snapshot is still usable after the swap.
        assert!(before.is_empty());
        assert!(!Arc::ptr_eq(&before, &shared.snapshot()));
    }

    #[test]
    fn concurrent_snapshots_and_swaps_do_not_panic() {
        let shared = Arc::new(SharedRepository::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snap = shared.snapshot();
                        assert!(snap.is_empty());
                    }
                });
            }
            let swapper = Arc::clone(&shared);
            scope.spawn(move || {
                for _ in 0..50 {
                    let _ = swapper.swap(ModelRepository::new());
                }
            });
        });
        assert_eq!(shared.generation(), 50);
    }

    #[test]
    fn shared_repository_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<SharedRepository>();
    }
}
