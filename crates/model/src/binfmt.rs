//! The zero-copy binary repository format (`dlaperf-bin` v1).
//!
//! The text format (see [`ModelRepository::to_text`]) is the debug format:
//! readable, diffable, and slow — every load re-tokenises and re-compiles
//! the whole model stack.  This module defines a versioned, alignment-aware
//! binary layout whose on-disk representation *is* the compiled layout:
//! monomial plans, SoA coefficient blocks, per-dimension cut arrays, cell
//! tables and fallback candidate sets are serialised in the exact shapes
//! [`CompiledVectorPolynomial`](crate::CompiledVectorPolynomial) /
//! [`CompiledPiecewise`](crate::CompiledPiecewise) /
//! [`CompiledRepository`] hold in memory, so a shard deserialises with one
//! validated bulk decode per section instead of re-parsing and re-compiling.
//! (`#![forbid(unsafe_code)]` stands: "zero-copy" means zero re-compilation
//! and zero per-element parsing, not raw pointer casts.)
//!
//! # On-disk layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "DLAPBIN\0"
//!      8     4  format version (currently 1)
//!     12     4  endian tag 0x01020304 (bytes 04 03 02 01 on disk)
//!     16     4  section count (currently 6)
//!     20     4  reserved (0)
//!     24     8  total file length in bytes
//!     32     8  FNV-1a 64 checksum, folded over 8-byte LE lanes (see below)
//!     40   144  section table: 6 x { kind u32, reserved u32, off u64, len u64 }
//!    184     -  payload sections, each padded to 8-byte alignment
//! ```
//!
//! The six sections appear in fixed order: `META` (the structural walk,
//! inline u32/u64 values), `U64S` (integer bounds and cut coordinates),
//! `F64S` (errors and coefficient matrices), `U32S` (cell tables, fallback
//! sets, explicit exponents), `U8S` (compiled monomial plans), `STRS`
//! (length-prefixed machine identifiers; unlike the whitespace-tokenised
//! text format, ids containing whitespace are representable here).  `U64S`
//! and `F64S` always start on an 8-byte boundary so a future memory-mapped
//! reader can view them in place.
//!
//! The checksum is FNV-1a 64 folded over the file as 8-byte little-endian
//! lanes — the checksum field itself is treated as zeros and a short final
//! lane is zero-padded — one xor/multiply per 8 bytes instead of per byte,
//! which keeps integrity checking a negligible share of the load path.
//!
//! Every count in `META` draws from a sequential per-section cursor; a file
//! whose cursors are not *exactly* consumed at the end is rejected, as is
//! any file whose checksum, version, endian tag, length, section table or
//! structural invariants do not hold — always with a structured
//! [`ModelError`], never a panic.

use dla_blas::Routine;
use dla_machine::Locality;
use dla_mat::stats::Quantity;

use crate::eval::{CompiledRegion, CompiledSubmodel};
use crate::{
    CompiledPiecewise, CompiledRepository, CompiledRoutineModel, CompiledVectorPolynomial, FlagKey,
    ModelError, ModelKey, ModelRepository, PiecewiseModel, Polynomial, Region, RegionModel, Result,
    RoutineModel, VectorPolynomial,
};

const MAGIC: [u8; 8] = *b"DLAPBIN\0";
const VERSION: u32 = 1;
const ENDIAN_TAG: u32 = 0x0102_0304;
const HEADER_LEN: usize = 40;
const SECTION_COUNT: usize = 6;
const TABLE_ENTRY_LEN: usize = 24;
const PAYLOAD_START: usize = HEADER_LEN + SECTION_COUNT * TABLE_ENTRY_LEN;
const CHECKSUM_OFFSET: usize = 32;

/// Section kinds, in their required file order.
const KIND_META: u32 = 1;
const KIND_U64S: u32 = 2;
const KIND_F64S: u32 = 3;
const KIND_U32S: u32 = 4;
const KIND_U8S: u32 = 5;
const KIND_STRS: u32 = 6;
const KINDS: [u32; SECTION_COUNT] = [
    KIND_META, KIND_U64S, KIND_F64S, KIND_U32S, KIND_U8S, KIND_STRS,
];

const MODE_REFERENCE: u32 = 0;
const MODE_FAST: u32 = 1;
const QMODE_CANONICAL: u32 = 0;
const QMODE_EXPLICIT: u32 = 1;

fn perr(msg: impl std::fmt::Display) -> ModelError {
    ModelError::Parse(format!("binary repository: {msg}"))
}

fn serr(msg: impl std::fmt::Display) -> ModelError {
    ModelError::Serialize(format!("binary repository: {msg}"))
}

/// FNV-1a 64 folded over 8-byte little-endian lanes: the checksum field
/// (which is itself lane-aligned) is treated as a zero lane and a short
/// final lane is zero-padded, so the whole file costs one xor/multiply per
/// 8 bytes instead of per byte.
fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET_BASIS;
    let mut chunks = bytes.chunks_exact(8);
    for (i, c) in chunks.by_ref().enumerate() {
        let lane = if i * 8 == CHECKSUM_OFFSET {
            0
        } else {
            u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
        };
        h ^= lane;
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Returns `true` when `bytes` start with the binary-repository magic — the
/// format-sniffing hook [`ModelRepository::load_file`] uses to route between
/// the binary and text codecs.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Sections {
    meta: Vec<u8>,
    u64s: Vec<u64>,
    f64s: Vec<f64>,
    u32s: Vec<u32>,
    u8s: Vec<u8>,
    strs: Vec<u8>,
}

impl Sections {
    fn meta_u32(&mut self, v: u32) {
        self.meta.extend_from_slice(&v.to_le_bytes());
    }

    fn meta_u64(&mut self, v: u64) {
        self.meta.extend_from_slice(&v.to_le_bytes());
    }

    fn meta_usize(&mut self, v: usize, what: &str) -> Result<()> {
        let v: u32 = v
            .try_into()
            .map_err(|_| serr(format!("{what} {v} exceeds u32")))?;
        self.meta_u32(v);
        Ok(())
    }

    fn push_str(&mut self, s: &str) -> (u32, u32) {
        let off = self.strs.len() as u32;
        self.strs.extend_from_slice(s.as_bytes());
        (off, s.len() as u32)
    }
}

/// Serialises a compiled repository (source *and* compiled layout) to the
/// binary format.  The result decodes with [`decode`] into an equal
/// repository with zero re-compilation; encoding the decoded value again
/// yields byte-identical output.
pub fn encode(compiled: &CompiledRepository) -> Result<Vec<u8>> {
    let source = compiled.source();
    let entries = compiled.entries();
    if source.len() != entries.len() {
        return Err(serr("compiled repository out of sync with its source"));
    }
    let mut s = Sections::default();
    s.meta_usize(source.len(), "model count")?;
    for ((key, model), (entry_key, entry)) in source.iter().zip(entries) {
        if key != entry_key {
            return Err(serr("compiled repository out of sync with its source"));
        }
        encode_model(&mut s, model, entry)?;
    }
    Ok(assemble(&s))
}

fn encode_model(
    s: &mut Sections,
    model: &RoutineModel,
    entry: &CompiledRoutineModel,
) -> Result<()> {
    let dim = model.space.dim();
    s.meta_u32(model.routine.index() as u32);
    let locality_idx = match model.locality {
        Locality::InCache => 0u32,
        Locality::OutOfCache => 1u32,
    };
    s.meta_u32(locality_idx);
    let (off, len) = s.push_str(&model.machine_id);
    s.meta_u32(off);
    s.meta_u32(len);
    s.meta_usize(dim, "model dimension")?;
    s.u64s.extend(model.space.lo().iter().map(|&v| v as u64));
    s.u64s.extend(model.space.hi().iter().map(|&v| v as u64));
    s.meta_usize(model.submodels.len(), "submodel count")?;
    let mut keys: Vec<&Vec<usize>> = model.submodels.keys().collect();
    keys.sort();
    for flags in keys {
        let sub = &model.submodels[flags];
        s.meta_usize(flags.len(), "flag count")?;
        for &f in flags {
            s.meta_u64(f as u64);
        }
        s.meta_u64(sub.total_samples as u64);
        // The compiled counterpart decides the storage mode: fast submodels
        // persist their compiled artefacts, everything else stores the
        // reference polynomials only.
        let fast = FlagKey::from_slice(flags).and_then(|fk| {
            entry.submodels().iter().find_map(|(k, cs)| match cs {
                CompiledSubmodel::Fast(c) if *k == fk => Some(c),
                _ => None,
            })
        });
        match fast {
            Some(c) => encode_fast_submodel(s, sub, c, dim)?,
            None => encode_reference_submodel(s, sub, dim)?,
        }
    }
    Ok(())
}

fn encode_fast_submodel(
    s: &mut Sections,
    sub: &PiecewiseModel,
    c: &CompiledPiecewise,
    dim: usize,
) -> Result<()> {
    if c.regions().len() != sub.regions.len() || c.dim() != dim {
        return Err(serr("compiled submodel out of sync with its source"));
    }
    s.meta_u32(MODE_FAST);
    s.meta_usize(sub.regions.len(), "region count")?;
    for cuts in c.cuts() {
        s.meta_usize(cuts.len(), "cut count")?;
        s.u64s.extend(cuts.iter().map(|&v| v as u64));
    }
    s.meta_u32(c.is_indexed() as u32);
    if c.is_indexed() {
        s.meta_usize(c.cells().len(), "cell count")?;
        s.u32s.extend_from_slice(c.cells());
        s.meta_usize(c.fallbacks().len(), "fallback count")?;
        for f in c.fallbacks() {
            s.meta_usize(f.len(), "fallback set size")?;
            s.u32s.extend_from_slice(f);
        }
    }
    for (rm, cr) in sub.regions.iter().zip(c.regions()) {
        encode_region_header(s, rm, dim)?;
        let poly = &cr.poly;
        s.meta_usize(poly.term_count(), "term count")?;
        s.u8s.extend_from_slice(poly.exponent_bytes());
        s.f64s.extend_from_slice(poly.coefficient_matrix());
        for (q, qpoly) in rm.poly.polynomials().iter().enumerate() {
            if canonical(qpoly, poly, q) {
                // The source polynomial is exactly the shared plan plus the
                // SoA column: nothing to store beyond the mode tag.
                s.meta_u32(QMODE_CANONICAL);
            } else {
                s.meta_u32(QMODE_EXPLICIT);
                encode_explicit_poly(s, qpoly, dim)?;
            }
        }
    }
    Ok(())
}

/// Is the source polynomial for quantity `q` bit-recoverable from the
/// compiled plan and SoA column alone?  Requires an identical term list
/// (same tuples, same order) and bitwise-equal coefficients — `-0.0` and
/// exotic NaN payloads fail the bit check (the SoA is accumulated through
/// `+=`, which canonicalises them) and conservatively fall back to explicit
/// storage, which keeps save→load→save byte-identical.
fn canonical(qpoly: &Polynomial, plan: &CompiledVectorPolynomial, q: usize) -> bool {
    let dim = plan.dim();
    if qpoly.term_count() != plan.term_count() || qpoly.dim() != dim {
        return false;
    }
    let bytes = plan.exponent_bytes();
    let soa = plan.coefficient_matrix();
    qpoly
        .exponents()
        .iter()
        .zip(qpoly.coefficients())
        .enumerate()
        .all(|(t, (exps, &c))| {
            exps.iter()
                .zip(&bytes[t * dim..(t + 1) * dim])
                .all(|(&e, &b)| e == b as u32)
                && c.to_bits() == soa[t * 5 + q].to_bits()
        })
}

fn encode_reference_submodel(s: &mut Sections, sub: &PiecewiseModel, dim: usize) -> Result<()> {
    s.meta_u32(MODE_REFERENCE);
    s.meta_usize(sub.regions.len(), "region count")?;
    for rm in &sub.regions {
        encode_region_header(s, rm, dim)?;
        for qpoly in rm.poly.polynomials() {
            encode_explicit_poly(s, qpoly, dim)?;
        }
    }
    Ok(())
}

fn encode_region_header(s: &mut Sections, rm: &RegionModel, dim: usize) -> Result<()> {
    if rm.region.dim() != dim {
        return Err(serr(format!(
            "region arity {} does not match model dimension {dim}",
            rm.region.dim()
        )));
    }
    s.u64s.extend(rm.region.lo().iter().map(|&v| v as u64));
    s.u64s.extend(rm.region.hi().iter().map(|&v| v as u64));
    s.f64s.push(rm.error);
    s.meta_u64(rm.samples_used as u64);
    Ok(())
}

fn encode_explicit_poly(s: &mut Sections, poly: &Polynomial, dim: usize) -> Result<()> {
    if poly.dim() != dim {
        return Err(serr(format!(
            "polynomial arity {} does not match model dimension {dim}",
            poly.dim()
        )));
    }
    s.meta_usize(poly.term_count(), "term count")?;
    for e in poly.exponents() {
        s.u32s.extend_from_slice(e);
    }
    s.f64s.extend_from_slice(poly.coefficients());
    Ok(())
}

fn assemble(s: &Sections) -> Vec<u8> {
    let payloads: [Vec<u8>; SECTION_COUNT] = [
        s.meta.clone(),
        s.u64s.iter().flat_map(|v| v.to_le_bytes()).collect(),
        s.f64s.iter().flat_map(|v| v.to_le_bytes()).collect(),
        s.u32s.iter().flat_map(|v| v.to_le_bytes()).collect(),
        s.u8s.clone(),
        s.strs.clone(),
    ];
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
    out.extend_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // total length, patched below
    out.extend_from_slice(&0u64.to_le_bytes()); // checksum, patched below

    // Section table: offsets assigned with 8-byte alignment padding.
    let mut off = PAYLOAD_START as u64;
    for (kind, payload) in KINDS.iter().zip(&payloads) {
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        off += payload.len() as u64;
        off = (off + 7) & !7;
    }
    debug_assert_eq!(out.len(), PAYLOAD_START);
    for payload in &payloads {
        out.extend_from_slice(payload);
        while out.len() % 8 != 0 {
            out.push(0);
        }
    }
    let total = out.len() as u64;
    out[24..32].copy_from_slice(&total.to_le_bytes());
    let sum = checksum(&out);
    out[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&sum.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A sequential cursor over one decoded section; every `META` count draws
/// from one of these, so any forged count runs into a bounds error instead
/// of an oversized allocation.
struct Cursor<'a, T> {
    data: &'a [T],
    pos: usize,
    what: &'static str,
}

impl<'a, T> Cursor<'a, T> {
    fn new(data: &'a [T], what: &'static str) -> Cursor<'a, T> {
        Cursor { data, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [T]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| perr(format!("{} section exhausted", self.what)))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.data.len() {
            return Err(perr(format!(
                "{} section has {} unconsumed entries",
                self.what,
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

struct MetaReader<'a> {
    cursor: Cursor<'a, u8>,
}

impl MetaReader<'_> {
    fn u32(&mut self) -> Result<u32> {
        let b = self.cursor.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.cursor.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn count(&mut self, what: &str) -> Result<usize> {
        let v = self.u32()?;
        usize::try_from(v).map_err(|_| perr(format!("{what} {v} does not fit in usize")))
    }

    fn u64_usize(&mut self, what: &str) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| perr(format!("{what} {v} does not fit in usize")))
    }
}

struct Decoded<'a> {
    meta: MetaReader<'a>,
    u8s: Cursor<'a, u8>,
    strs: &'a [u8],
    strs_used: usize,
}

fn usizes(vals: &[u64], what: &str) -> Result<Vec<usize>> {
    vals.iter()
        .map(|&v| usize::try_from(v).map_err(|_| perr(format!("{what} {v} does not fit in usize"))))
        .collect()
}

/// Validates the header and section table of a candidate binary repository
/// and returns the six raw payload slices in section order.
fn validate_frame(bytes: &[u8]) -> Result<[&[u8]; SECTION_COUNT]> {
    if !is_binary(bytes) {
        return Err(perr("not a binary repository (bad magic)"));
    }
    if bytes.len() < 16 {
        return Err(perr("truncated header"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let endian = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if endian == ENDIAN_TAG.swap_bytes() {
        return Err(perr(
            "big-endian repository (written on a foreign-endian machine)",
        ));
    }
    if endian != ENDIAN_TAG {
        return Err(perr(format!("corrupt endian tag {endian:#010x}")));
    }
    if version != VERSION {
        return Err(perr(format!(
            "unsupported format version {version} (this build reads version {VERSION})"
        )));
    }
    if bytes.len() < PAYLOAD_START {
        return Err(perr("truncated header"));
    }
    let section_count = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    if section_count as usize != SECTION_COUNT {
        return Err(perr(format!(
            "expected {SECTION_COUNT} sections, found {section_count}"
        )));
    }
    let total = u64::from_le_bytes([
        bytes[24], bytes[25], bytes[26], bytes[27], bytes[28], bytes[29], bytes[30], bytes[31],
    ]);
    if total != bytes.len() as u64 {
        return Err(perr(format!(
            "recorded length {total} does not match actual length {}",
            bytes.len()
        )));
    }
    let recorded = u64::from_le_bytes([
        bytes[32], bytes[33], bytes[34], bytes[35], bytes[36], bytes[37], bytes[38], bytes[39],
    ]);
    let actual = checksum(bytes);
    if recorded != actual {
        return Err(perr(format!(
            "checksum mismatch (recorded {recorded:#018x}, computed {actual:#018x})"
        )));
    }
    let mut sections = [&bytes[0..0]; SECTION_COUNT];
    for (i, expected_kind) in KINDS.iter().enumerate() {
        let base = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let e = &bytes[base..base + TABLE_ENTRY_LEN];
        let kind = u32::from_le_bytes([e[0], e[1], e[2], e[3]]);
        if kind != *expected_kind {
            return Err(perr(format!(
                "section {i} has kind {kind}, expected {expected_kind}"
            )));
        }
        let off = u64::from_le_bytes([e[8], e[9], e[10], e[11], e[12], e[13], e[14], e[15]]);
        let len = u64::from_le_bytes([e[16], e[17], e[18], e[19], e[20], e[21], e[22], e[23]]);
        let off = usize::try_from(off).map_err(|_| perr("section offset overflows"))?;
        let len = usize::try_from(len).map_err(|_| perr("section length overflows"))?;
        let end = off
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| perr(format!("section {i} extends past the end of the file")))?;
        if off % 8 != 0 {
            return Err(perr(format!("section {i} is not 8-byte aligned")));
        }
        let elem = match *expected_kind {
            KIND_U64S | KIND_F64S => 8,
            KIND_U32S => 4,
            _ => 1,
        };
        if len % elem != 0 {
            return Err(perr(format!(
                "section {i} length {len} is not a multiple of its element size {elem}"
            )));
        }
        sections[i] = &bytes[off..end];
    }
    Ok(sections)
}

/// Deserialises a binary repository: one validated bulk decode per numeric
/// section, then a structural walk that reassembles the compiled layout with
/// **zero re-compilation** — the stored artefacts *are* the compiled
/// representation.
///
/// The source [`ModelRepository`] is *not* rebuilt here: the returned
/// repository keeps the validated bytes and materialises its source lazily
/// on first [`source()`](CompiledRepository::source) access (merge, save and
/// reference-evaluation paths), so the load-to-serve-ready path pays only
/// for the compiled structures it actually serves from.
pub fn decode(bytes: &[u8]) -> Result<CompiledRepository> {
    let (_, entries) = decode_impl(bytes, false)?;
    Ok(CompiledRepository::from_encoded(bytes.to_vec(), entries))
}

/// Rebuilds the source [`ModelRepository`] from validated bytes — the lazy
/// half of [`decode`], run on first `source()` access.  Performs the same
/// full validation walk, so it is safe to call on arbitrary bytes too.
pub(crate) fn decode_source(bytes: &[u8]) -> Result<ModelRepository> {
    let (repo, _) = decode_impl(bytes, true)?;
    Ok(repo)
}

/// The shared decode walk.  With `want_source` the source models are
/// reconstructed alongside the compiled entries (the slow, rare path);
/// without it every source-only artefact — per-term exponent vectors,
/// canonical quantity polynomials, region models — is skipped while the
/// cursors still consume exactly the same data, keeping validation
/// identical on both paths.
fn decode_impl(
    bytes: &[u8],
    want_source: bool,
) -> Result<(ModelRepository, Vec<(ModelKey, CompiledRoutineModel)>)> {
    let sections = validate_frame(bytes)?;
    // Bulk-decode the numeric sections (the only per-element work on the
    // load path, a straight LE reinterpretation of each 8- or 4-byte chunk).
    let u64s_data: Vec<u64> = sections[1]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    let f64s_data: Vec<f64> = sections[2]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    let u32s_data: Vec<u32> = sections[3]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    let mut d = Decoded {
        meta: MetaReader {
            cursor: Cursor::new(sections[0], "META"),
        },
        u8s: Cursor::new(sections[4], "U8S"),
        strs: sections[5],
        strs_used: 0,
    };
    let mut u64s = Cursor::new(&u64s_data, "U64S");
    let mut f64s = Cursor::new(&f64s_data, "F64S");
    let mut u32s = Cursor::new(&u32s_data, "U32S");

    let model_count = d.meta.count("model count")?;
    let mut repo = ModelRepository::new();
    let mut entries: Vec<(ModelKey, CompiledRoutineModel)> = Vec::new();
    let mut prev_key: Option<ModelKey> = None;
    for _ in 0..model_count {
        let (model, key, compiled) =
            decode_model(&mut d, &mut u64s, &mut f64s, &mut u32s, want_source)?;
        // Models must be stored in strictly ascending key order (the order
        // the writer and `compile_arc` both produce), which also rules out
        // duplicates silently overwriting each other.
        if let Some(prev) = &prev_key {
            if *prev >= key {
                return Err(perr(format!(
                    "model keys out of order ({}/{}/{} follows an equal or later key)",
                    key.routine, key.machine_id, key.locality
                )));
            }
        }
        prev_key = Some(key.clone());
        if let Some(model) = model {
            repo.insert(model);
        }
        entries.push((key, compiled));
    }
    d.meta.cursor.finish()?;
    u64s.finish()?;
    f64s.finish()?;
    u32s.finish()?;
    d.u8s.finish()?;
    if d.strs_used != d.strs.len() {
        return Err(perr("unreferenced trailing string data"));
    }
    Ok((repo, entries))
}

fn decode_model(
    d: &mut Decoded<'_>,
    u64s: &mut Cursor<'_, u64>,
    f64s: &mut Cursor<'_, f64>,
    u32s: &mut Cursor<'_, u32>,
    want_source: bool,
) -> Result<(Option<RoutineModel>, ModelKey, CompiledRoutineModel)> {
    let routine_idx = d.meta.count("routine index")?;
    let routine = *Routine::ALL
        .get(routine_idx)
        .ok_or_else(|| perr(format!("unknown routine index {routine_idx}")))?;
    let locality = match d.meta.u32()? {
        0 => Locality::InCache,
        1 => Locality::OutOfCache,
        other => return Err(perr(format!("unknown locality index {other}"))),
    };
    let str_off = d.meta.count("machine id offset")?;
    let str_len = d.meta.count("machine id length")?;
    let end = str_off
        .checked_add(str_len)
        .filter(|&e| e <= d.strs.len())
        .ok_or_else(|| perr("machine id extends past the string section"))?;
    let machine_id = std::str::from_utf8(&d.strs[str_off..end])
        .map_err(|_| perr("machine id is not valid UTF-8"))?
        .to_string();
    d.strs_used = d.strs_used.max(end);
    let dim = d.meta.count("model dimension")?;
    let space = decode_region(u64s, dim)?;
    let submodel_count = d.meta.count("submodel count")?;
    let key = ModelKey::new(routine, &machine_id, locality);
    let mut model =
        want_source.then(|| RoutineModel::new(routine, machine_id, locality, space.clone()));
    let mut compiled_subs: Vec<(FlagKey, CompiledSubmodel)> = Vec::new();
    let mut prev_flags: Option<Vec<usize>> = None;
    for _ in 0..submodel_count {
        let flag_count = d.meta.count("flag count")?;
        let mut flags = Vec::with_capacity(flag_count.min(64));
        for _ in 0..flag_count {
            flags.push(d.meta.u64_usize("flag value")?);
        }
        // Sorted flag keys keep the compiled submodel order identical to
        // what compiling the source would produce.
        if let Some(prev) = &prev_flags {
            if *prev >= flags {
                return Err(perr("submodel flag keys out of order"));
            }
        }
        prev_flags = Some(flags.clone());
        let total_samples = d.meta.u64_usize("sample count")?;
        let mode = d.meta.u32()?;
        let region_count = d.meta.count("region count")?;
        match mode {
            MODE_FAST => {
                let fk = FlagKey::from_slice(&flags)
                    .ok_or_else(|| perr("fast submodel with an unrepresentable flag key"))?;
                let (sub, fast) = decode_fast_submodel(
                    d,
                    u64s,
                    f64s,
                    u32s,
                    dim,
                    region_count,
                    total_samples,
                    want_source,
                )?;
                if let (Some(m), Some(sub)) = (model.as_mut(), sub) {
                    m.insert_submodel(flags, sub);
                }
                compiled_subs.push((fk, CompiledSubmodel::Fast(fast)));
            }
            MODE_REFERENCE => {
                let sub = decode_reference_submodel(
                    d,
                    u64s,
                    f64s,
                    u32s,
                    dim,
                    region_count,
                    total_samples,
                    &space,
                )?;
                // Reference mode records that compilation declined this
                // submodel; only keys a real call can produce are kept, the
                // same filter compilation applies.
                if let Some(fk) = FlagKey::from_slice(&flags) {
                    compiled_subs.push((fk, CompiledSubmodel::Reference(sub.clone())));
                }
                if let Some(m) = model.as_mut() {
                    m.insert_submodel(flags, sub);
                }
            }
            other => return Err(perr(format!("unknown submodel mode {other}"))),
        }
    }
    let compiled = CompiledRoutineModel::from_raw_parts(routine, &space, compiled_subs);
    Ok((model, key, compiled))
}

fn decode_region(u64s: &mut Cursor<'_, u64>, dim: usize) -> Result<Region> {
    let lo = usizes(u64s.take(dim)?, "region bound")?;
    let hi = usizes(u64s.take(dim)?, "region bound")?;
    if lo.iter().zip(&hi).any(|(l, h)| l > h) {
        return Err(perr("region bounds inverted"));
    }
    Ok(Region::new(lo, hi))
}

#[allow(clippy::too_many_arguments)]
fn decode_fast_submodel(
    d: &mut Decoded<'_>,
    u64s: &mut Cursor<'_, u64>,
    f64s: &mut Cursor<'_, f64>,
    u32s: &mut Cursor<'_, u32>,
    dim: usize,
    region_count: usize,
    total_samples: usize,
    want_source: bool,
) -> Result<(Option<PiecewiseModel>, CompiledPiecewise)> {
    let mut cuts = Vec::with_capacity(dim.min(crate::MAX_DIM));
    for _ in 0..dim {
        let n = d.meta.count("cut count")?;
        cuts.push(usizes(u64s.take(n)?, "cut coordinate")?);
    }
    let indexed = match d.meta.u32()? {
        0 => false,
        1 => true,
        other => return Err(perr(format!("bad indexed flag {other}"))),
    };
    let mut cells = Vec::new();
    let mut fallbacks = Vec::new();
    if indexed {
        let n = d.meta.count("cell count")?;
        cells = u32s.take(n)?.to_vec();
        let fb = d.meta.count("fallback count")?;
        for _ in 0..fb {
            let n = d.meta.count("fallback set size")?;
            fallbacks.push(u32s.take(n)?.to_vec());
        }
    }
    let mut regions = Vec::with_capacity(region_count.min(1 << 16));
    let mut compiled_regions = Vec::with_capacity(region_count.min(1 << 16));
    let mut space_lo = vec![usize::MAX; dim];
    let mut space_hi = vec![0usize; dim];
    for _ in 0..region_count {
        let region = decode_region(u64s, dim)?;
        let error = f64s.take(1)?[0];
        let samples_used = d.meta.u64_usize("region sample count")?;
        let term_count = d.meta.count("term count")?;
        let exp_len = term_count
            .checked_mul(dim)
            .ok_or_else(|| perr("exponent matrix size overflows"))?;
        let exponents = d.u8s.take(exp_len)?.to_vec();
        let coeff_len = term_count
            .checked_mul(5)
            .ok_or_else(|| perr("coefficient matrix size overflows"))?;
        let coefficients = f64s.take(coeff_len)?.to_vec();
        let plan = CompiledVectorPolynomial::from_raw_parts(dim, exponents, coefficients)?;
        let mut polys = Vec::with_capacity(if want_source { Quantity::ALL.len() } else { 0 });
        for q in 0..Quantity::ALL.len() {
            match d.meta.u32()? {
                QMODE_CANONICAL => {
                    // The quantity polynomial is the shared plan plus the
                    // q-th SoA column, bit-for-bit.  Nothing to read and —
                    // on the compiled-only path — nothing to build: the
                    // plan already validated the shared monomial data.
                    if want_source {
                        let exps: Vec<Vec<u32>> = plan
                            .exponent_bytes()
                            .chunks_exact(dim.max(1))
                            .map(|t| t.iter().map(|&b| b as u32).collect())
                            .collect();
                        let coeffs: Vec<f64> = (0..plan.term_count())
                            .map(|t| plan.coefficient_matrix()[t * 5 + q])
                            .collect();
                        polys.push(
                            Polynomial::new(dim, exps, coeffs)
                                .map_err(|e| perr(format!("invalid canonical polynomial: {e}")))?,
                        );
                    }
                }
                QMODE_EXPLICIT => {
                    // Always decoded (and hence validated), so both walk
                    // modes accept exactly the same files.
                    let poly = decode_explicit_poly(d, f64s, u32s, dim)?;
                    if want_source {
                        polys.push(poly);
                    }
                }
                other => return Err(perr(format!("unknown quantity mode {other}"))),
            }
        }
        if want_source {
            for dd in 0..dim {
                space_lo[dd] = space_lo[dd].min(region.lo()[dd]);
                space_hi[dd] = space_hi[dd].max(region.hi()[dd]);
            }
            regions.push(RegionModel {
                region: region.clone(),
                poly: VectorPolynomial::new(polys)
                    .map_err(|e| perr(format!("invalid vector polynomial: {e}")))?,
                error,
                samples_used,
                // Provenance is runtime-only (same rule as the text format):
                // reloaded regions restart at revision 0.
                revision: 0,
            });
        }
        compiled_regions.push(CompiledRegion::compile(&region, plan, error));
    }
    let fast =
        CompiledPiecewise::from_raw_parts(dim, compiled_regions, cuts, cells, fallbacks, indexed)?;
    let source = want_source
        .then(|| PiecewiseModel::new(Region::new(space_lo, space_hi), regions, total_samples));
    Ok((source, fast))
}

#[allow(clippy::too_many_arguments)]
fn decode_reference_submodel(
    d: &mut Decoded<'_>,
    u64s: &mut Cursor<'_, u64>,
    f64s: &mut Cursor<'_, f64>,
    u32s: &mut Cursor<'_, u32>,
    dim: usize,
    region_count: usize,
    total_samples: usize,
    space: &Region,
) -> Result<PiecewiseModel> {
    let mut regions = Vec::with_capacity(region_count.min(1 << 16));
    for _ in 0..region_count {
        let region = decode_region(u64s, dim)?;
        let error = f64s.take(1)?[0];
        let samples_used = d.meta.u64_usize("region sample count")?;
        let mut polys = Vec::with_capacity(Quantity::ALL.len());
        for _ in Quantity::ALL {
            polys.push(decode_explicit_poly(d, f64s, u32s, dim)?);
        }
        regions.push(RegionModel {
            region,
            poly: VectorPolynomial::new(polys)
                .map_err(|e| perr(format!("invalid vector polynomial: {e}")))?,
            error,
            samples_used,
            revision: 0,
        });
    }
    Ok(PiecewiseModel::new(space.clone(), regions, total_samples))
}

fn decode_explicit_poly(
    d: &mut Decoded<'_>,
    f64s: &mut Cursor<'_, f64>,
    u32s: &mut Cursor<'_, u32>,
    dim: usize,
) -> Result<Polynomial> {
    let terms = d.meta.count("term count")?;
    let flat = u32s.take(
        terms
            .checked_mul(dim)
            .ok_or_else(|| perr("exponent matrix size overflows"))?,
    )?;
    let exponents: Vec<Vec<u32>> = if dim == 0 {
        vec![Vec::new(); terms]
    } else {
        flat.chunks_exact(dim).map(|c| c.to_vec()).collect()
    };
    let coefficients = f64s.take(terms)?.to_vec();
    Polynomial::new(dim, exponents, coefficients)
        .map_err(|e| perr(format!("invalid polynomial: {e}")))
}
