//! The model repository: persistent storage of routine models.
//!
//! The paper stores generated models "permanently in a repository" so that
//! they can be reused for any algorithm built from the modelled routines.
//! This module provides that repository with a small, versioned, line-oriented
//! text format (no external serialisation dependency), plus file persistence.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use dla_blas::Routine;
use dla_machine::Locality;
use dla_mat::stats::Quantity;

use crate::{
    ModelError, PiecewiseModel, Polynomial, Region, RegionModel, Result, RoutineModel,
    VectorPolynomial,
};

/// Identifies one routine model inside the repository.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelKey {
    /// Routine name (`dgemm`, ...).
    pub routine: String,
    /// Machine-configuration identifier.
    pub machine_id: String,
    /// Memory-locality scenario name.
    pub locality: String,
}

impl ModelKey {
    /// Builds a key from typed components.
    pub fn new(routine: Routine, machine_id: &str, locality: Locality) -> ModelKey {
        ModelKey {
            routine: routine.name().to_string(),
            machine_id: machine_id.to_string(),
            locality: locality.name().to_string(),
        }
    }
}

/// A collection of routine models, persistable as plain text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelRepository {
    models: BTreeMap<ModelKey, RoutineModel>,
}

const FORMAT_HEADER: &str = "dlaperf-models v1";

impl ModelRepository {
    /// Creates an empty repository.
    pub fn new() -> ModelRepository {
        ModelRepository::default()
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` if the repository holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Stores a model, replacing any previous model with the same key.
    pub fn insert(&mut self, model: RoutineModel) {
        let key = ModelKey::new(model.routine, &model.machine_id, model.locality);
        self.models.insert(key, model);
    }

    /// Merges another repository into this one — an alias of
    /// [`merge_models`](ModelRepository::merge_models), kept for the
    /// historical name used by the parallel build stage and
    /// `Pipeline::build_models`.
    pub fn merge(&mut self, other: ModelRepository) {
        self.merge_models(other);
    }

    /// Merges another repository into this one at **submodel granularity**.
    ///
    /// Models of `other` under a fresh key are inserted; on a key collision
    /// the two routine models are combined with
    /// [`RoutineModel::merge_from`]: `other`'s flag-variant submodels replace
    /// their counterparts while flag variants present only in `self` are
    /// kept.  (The previous behaviour — replacing the *entire* routine model
    /// on collision — silently dropped flag variants built elsewhere, which
    /// broke incremental publishes that only carry the rebuilt variants.)
    /// `other`'s `BTreeMap` ordering makes the merge deterministic.
    pub fn merge_models(&mut self, other: ModelRepository) {
        for (key, model) in other.models {
            match self.models.get_mut(&key) {
                Some(existing) => existing.merge_from(model),
                None => {
                    self.models.insert(key, model);
                }
            }
        }
    }

    /// Looks up the model for a routine / machine / locality combination.
    pub fn get(
        &self,
        routine: Routine,
        machine_id: &str,
        locality: Locality,
    ) -> Option<&RoutineModel> {
        self.models
            .get(&ModelKey::new(routine, machine_id, locality))
    }

    /// Iterates over the stored models.
    pub fn iter(&self) -> impl Iterator<Item = (&ModelKey, &RoutineModel)> {
        self.models.iter()
    }

    /// Total number of samples used to build all stored models.
    pub fn total_samples(&self) -> usize {
        self.models.values().map(|m| m.total_samples()).sum()
    }

    /// Runs the repository through the compiled evaluation engine (see
    /// [`CompiledRepository`](crate::CompiledRepository)); the compiled form
    /// keeps a clone of this repository as its reference source.
    pub fn compiled(&self) -> crate::CompiledRepository {
        crate::CompiledRepository::compile(self.clone())
    }

    /// Serialises the repository to the versioned text format.
    ///
    /// The format's `model` header is whitespace-tokenised, so a machine id
    /// containing whitespace (or an empty one) cannot be represented — it
    /// would be re-tokenised into different fields on reload.  Such ids are
    /// rejected here with [`ModelError::Serialize`] instead of producing a
    /// file that silently fails (or worse, roundtrips wrongly) at parse time.
    pub fn to_text(&self) -> Result<String> {
        let mut out = String::new();
        let _ = writeln!(out, "{FORMAT_HEADER}");
        for (key, model) in &self.models {
            if key.machine_id.is_empty() || key.machine_id.chars().any(char::is_whitespace) {
                return Err(ModelError::Serialize(format!(
                    "machine id {:?} (model {}/{}) cannot be represented in the \
                     whitespace-tokenised text format; use an id without whitespace \
                     (cf. MachineConfig::id, which replaces spaces with '_')",
                    key.machine_id, key.routine, key.locality
                )));
            }
            let _ = writeln!(
                out,
                "model {} machine {} locality {} dim {}",
                key.routine,
                key.machine_id,
                key.locality,
                model.space.dim()
            );
            let _ = writeln!(
                out,
                "space {} {}",
                join_usizes(model.space.lo()),
                join_usizes(model.space.hi())
            );
            let mut keys: Vec<&Vec<usize>> = model.submodels.keys().collect();
            keys.sort();
            for flags in keys {
                let sub = &model.submodels[flags];
                let flag_str = if flags.is_empty() {
                    "-".to_string()
                } else {
                    flags
                        .iter()
                        .map(|f| f.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let _ = writeln!(out, "submodel {} samples {}", flag_str, sub.total_samples);
                for region in &sub.regions {
                    let _ = writeln!(
                        out,
                        "region {} {} error {:e} samples {}",
                        join_usizes(region.region.lo()),
                        join_usizes(region.region.hi()),
                        region.error,
                        region.samples_used
                    );
                    for q in Quantity::ALL {
                        let poly = region.poly.polynomial(q);
                        let _ = writeln!(out, "poly {} terms {}", q.name(), poly.term_count());
                        for (e, c) in poly.exponents().iter().zip(poly.coefficients()) {
                            let _ = writeln!(out, "term {} {:e}", join_u32s(e), c);
                        }
                    }
                    let _ = writeln!(out, "end_region");
                }
                let _ = writeln!(out, "end_submodel");
            }
            let _ = writeln!(out, "end_model");
        }
        Ok(out)
    }

    /// Parses a repository from its text form.
    pub fn from_text(text: &str) -> Result<ModelRepository> {
        let mut lines = text.lines().enumerate().peekable();
        let (_, header) = lines
            .next()
            .ok_or_else(|| ModelError::Parse("empty repository text".to_string()))?;
        if header.trim() != FORMAT_HEADER {
            return Err(ModelError::Parse(format!(
                "unexpected header '{header}', expected '{FORMAT_HEADER}'"
            )));
        }
        let mut repo = ModelRepository::new();
        while let Some(&(n, line)) = lines.peek() {
            let line = line.trim();
            if line.is_empty() {
                lines.next();
                continue;
            }
            if !line.starts_with("model ") {
                return Err(ModelError::Parse(format!(
                    "line {}: expected 'model', got '{line}'",
                    n + 1
                )));
            }
            let model = parse_model(&mut lines)?;
            let key = ModelKey::new(model.routine, &model.machine_id, model.locality);
            // Duplicate headers in one file are almost certainly a botched
            // concatenation; silently letting the later model win would drop
            // data, so make it a parse error at the offending header line.
            if repo.models.contains_key(&key) {
                return Err(parse_err(
                    n,
                    format!(
                        "duplicate model '{} machine {} locality {}' (an earlier \
                         model in this file has the same key)",
                        key.routine, key.machine_id, key.locality
                    ),
                ));
            }
            repo.insert(model);
        }
        Ok(repo)
    }

    /// Serialises the repository to the binary format (compiling it first —
    /// use [`crate::binfmt::encode`] directly when a compiled form is
    /// already at hand).
    pub fn to_binary(&self) -> Result<Vec<u8>> {
        crate::binfmt::encode(&self.compiled())
    }

    /// Parses a repository from its binary form, discarding the compiled
    /// layout (use [`crate::binfmt::decode`] to keep it).
    pub fn from_binary(bytes: &[u8]) -> Result<ModelRepository> {
        Ok(crate::binfmt::decode(bytes)?.source().as_ref().clone())
    }

    /// Writes the repository to a file in the codec
    /// [`RepositoryFormat::for_path`] selects from the extension
    /// (`.dlapb`/`.bin` → binary, anything else → text).
    pub fn save_file(&self, path: &Path) -> Result<()> {
        self.save_file_as(path, RepositoryFormat::for_path(path))
    }

    /// Writes the repository to a file in an explicitly chosen codec.
    ///
    /// Errors carry the offending path, so a failed write in a fleet of
    /// repository files is diagnosable from the message alone.
    pub fn save_file_as(&self, path: &Path, format: RepositoryFormat) -> Result<()> {
        let bytes = match format {
            RepositoryFormat::Text => self.to_text()?.into_bytes(),
            RepositoryFormat::Binary => self.to_binary()?,
        };
        std::fs::write(path, bytes).map_err(|e| file_error(path, ModelError::Io(e.to_string())))
    }

    /// Loads a repository from a file, sniffing the codec from the magic
    /// bytes (so either format loads regardless of extension).
    ///
    /// Errors — I/O and parse/decode alike — carry the offending path, so a
    /// corrupt file among many distributed repositories is diagnosable from
    /// the message alone.
    pub fn load_file(path: &Path) -> Result<ModelRepository> {
        let bytes =
            std::fs::read(path).map_err(|e| file_error(path, ModelError::Io(e.to_string())))?;
        match RepositoryFormat::sniff(&bytes) {
            RepositoryFormat::Binary => {
                ModelRepository::from_binary(&bytes).map_err(|e| file_error(path, e))
            }
            RepositoryFormat::Text => {
                let text = String::from_utf8(bytes).map_err(|_| {
                    file_error(
                        path,
                        ModelError::Parse("repository text is not valid UTF-8".to_string()),
                    )
                })?;
                ModelRepository::from_text(&text).map_err(|e| file_error(path, e))
            }
        }
    }

    /// Loads a repository from a file straight into serve-ready compiled
    /// form.  Binary files skip compilation entirely (the stored layout *is*
    /// the compiled layout); text files parse and compile once.
    ///
    /// Errors carry the offending path, like [`ModelRepository::load_file`].
    pub fn load_file_compiled(path: &Path) -> Result<crate::CompiledRepository> {
        let bytes =
            std::fs::read(path).map_err(|e| file_error(path, ModelError::Io(e.to_string())))?;
        match RepositoryFormat::sniff(&bytes) {
            RepositoryFormat::Binary => {
                crate::binfmt::decode(&bytes).map_err(|e| file_error(path, e))
            }
            RepositoryFormat::Text => {
                let text = String::from_utf8(bytes).map_err(|_| {
                    file_error(
                        path,
                        ModelError::Parse("repository text is not valid UTF-8".to_string()),
                    )
                })?;
                Ok(ModelRepository::from_text(&text)
                    .map_err(|e| file_error(path, e))?
                    .compiled())
            }
        }
    }
}

/// Prefixes a repository-file error with the offending path, preserving the
/// error's variant (an I/O error stays `Io`, a parse error stays `Parse`).
fn file_error(path: &Path, error: ModelError) -> ModelError {
    let p = path.display();
    match error {
        ModelError::Io(msg) => ModelError::Io(format!("{p}: {msg}")),
        ModelError::Parse(msg) => ModelError::Parse(format!("{p}: {msg}")),
        ModelError::Serialize(msg) => ModelError::Serialize(format!("{p}: {msg}")),
        ModelError::Validation(msg) => ModelError::Validation(format!("{p}: {msg}")),
        other => other,
    }
}

/// The two repository codecs behind the format-sniffing front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepositoryFormat {
    /// The whitespace-tokenised text format — readable, diffable, the debug
    /// format of choice; every load re-parses and re-compiles.
    Text,
    /// The zero-copy binary format (see [`crate::binfmt`]) — the serving
    /// format; loads are one validated bulk decode per section.
    Binary,
}

impl RepositoryFormat {
    /// Picks the codec for a path from its extension: `.dlapb` or `.bin`
    /// mean binary, everything else (including no extension) means text.
    pub fn for_path(path: &Path) -> RepositoryFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("dlapb") | Some("bin") => RepositoryFormat::Binary,
            _ => RepositoryFormat::Text,
        }
    }

    /// Detects the codec of serialized bytes from the binary magic.
    pub fn sniff(bytes: &[u8]) -> RepositoryFormat {
        if crate::binfmt::is_binary(bytes) {
            RepositoryFormat::Binary
        } else {
            RepositoryFormat::Text
        }
    }
}

fn join_usizes(v: &[usize]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn join_u32s(v: &[u32]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

type Lines<'a> = std::iter::Peekable<std::iter::Enumerate<std::str::Lines<'a>>>;

fn parse_err(n: usize, msg: impl std::fmt::Display) -> ModelError {
    ModelError::Parse(format!("line {}: {msg}", n + 1))
}

fn next_line<'a>(lines: &mut Lines<'a>, what: &str) -> Result<(usize, &'a str)> {
    lines
        .next()
        .map(|(n, l)| (n, l.trim()))
        .ok_or_else(|| ModelError::Parse(format!("unexpected end of input, expected {what}")))
}

fn parse_usizes(n: usize, toks: &[&str]) -> Result<Vec<usize>> {
    toks.iter()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| parse_err(n, format!("bad integer '{t}'")))
        })
        .collect()
}

fn parse_model(lines: &mut Lines<'_>) -> Result<RoutineModel> {
    let (n, header) = next_line(lines, "model header")?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    // model <routine> machine <id> locality <loc> dim <d>
    if toks.len() != 8
        || toks[0] != "model"
        || toks[2] != "machine"
        || toks[4] != "locality"
        || toks[6] != "dim"
    {
        return Err(parse_err(n, format!("malformed model header '{header}'")));
    }
    let routine = Routine::from_name(toks[1])
        .ok_or_else(|| parse_err(n, format!("unknown routine '{}'", toks[1])))?;
    let machine_id = toks[3].to_string();
    let locality = Locality::from_name(toks[5])
        .ok_or_else(|| parse_err(n, format!("unknown locality '{}'", toks[5])))?;
    let dim: usize = toks[7]
        .parse()
        .map_err(|_| parse_err(n, format!("bad dimension '{}'", toks[7])))?;

    let (n, space_line) = next_line(lines, "space line")?;
    let toks: Vec<&str> = space_line.split_whitespace().collect();
    if toks.len() != 1 + 2 * dim || toks[0] != "space" {
        return Err(parse_err(n, format!("malformed space line '{space_line}'")));
    }
    let lo = parse_usizes(n, &toks[1..1 + dim])?;
    let hi = parse_usizes(n, &toks[1 + dim..])?;
    let space = Region::new(lo, hi);
    let mut model = RoutineModel::new(routine, machine_id, locality, space.clone());

    loop {
        let (n, line) = next_line(lines, "submodel or end_model")?;
        if line == "end_model" {
            return Ok(model);
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 4 || toks[0] != "submodel" || toks[2] != "samples" {
            return Err(parse_err(
                n,
                format!("expected submodel line, got '{line}'"),
            ));
        }
        let flags: Vec<usize> = if toks[1] == "-" {
            vec![]
        } else {
            toks[1]
                .split(',')
                .map(|t| {
                    t.parse::<usize>()
                        .map_err(|_| parse_err(n, format!("bad flag '{t}'")))
                })
                .collect::<Result<Vec<usize>>>()?
        };
        let total_samples: usize = toks[3]
            .parse()
            .map_err(|_| parse_err(n, format!("bad sample count '{}'", toks[3])))?;
        let mut regions = Vec::new();
        loop {
            let (n, line) = next_line(lines, "region or end_submodel")?;
            if line == "end_submodel" {
                break;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 1 + 2 * dim + 4 || toks[0] != "region" {
                return Err(parse_err(n, format!("expected region line, got '{line}'")));
            }
            let lo = parse_usizes(n, &toks[1..1 + dim])?;
            let hi = parse_usizes(n, &toks[1 + dim..1 + 2 * dim])?;
            if toks[1 + 2 * dim] != "error" || toks[3 + 2 * dim] != "samples" {
                return Err(parse_err(n, format!("malformed region line '{line}'")));
            }
            let error: f64 = toks[2 + 2 * dim]
                .parse()
                .map_err(|_| parse_err(n, "bad error value"))?;
            let samples_used: usize = toks[4 + 2 * dim]
                .parse()
                .map_err(|_| parse_err(n, "bad region sample count"))?;
            let mut polys = Vec::with_capacity(Quantity::ALL.len());
            for q in Quantity::ALL {
                let (n, line) = next_line(lines, "poly line")?;
                let toks: Vec<&str> = line.split_whitespace().collect();
                if toks.len() != 4 || toks[0] != "poly" || toks[2] != "terms" {
                    return Err(parse_err(n, format!("expected poly line, got '{line}'")));
                }
                if toks[1] != q.name() {
                    return Err(parse_err(
                        n,
                        format!("expected quantity '{}', got '{}'", q.name(), toks[1]),
                    ));
                }
                let terms: usize = toks[3]
                    .parse()
                    .map_err(|_| parse_err(n, "bad term count"))?;
                let mut exponents = Vec::with_capacity(terms);
                let mut coefficients = Vec::with_capacity(terms);
                for _ in 0..terms {
                    let (n, line) = next_line(lines, "term line")?;
                    let toks: Vec<&str> = line.split_whitespace().collect();
                    if toks.len() != 2 + dim || toks[0] != "term" {
                        return Err(parse_err(n, format!("expected term line, got '{line}'")));
                    }
                    let exps: Vec<u32> = toks[1..1 + dim]
                        .iter()
                        .map(|t| t.parse::<u32>().map_err(|_| parse_err(n, "bad exponent")))
                        .collect::<Result<Vec<u32>>>()?;
                    let coeff: f64 = toks[1 + dim]
                        .parse()
                        .map_err(|_| parse_err(n, "bad coefficient"))?;
                    exponents.push(exps);
                    coefficients.push(coeff);
                }
                polys.push(
                    Polynomial::new(dim, exponents, coefficients)
                        .map_err(|e| parse_err(n, format!("invalid polynomial: {e}")))?,
                );
            }
            let (n, end) = next_line(lines, "end_region")?;
            if end != "end_region" {
                return Err(parse_err(n, format!("expected end_region, got '{end}'")));
            }
            regions.push(RegionModel {
                region: Region::new(lo, hi),
                poly: VectorPolynomial::new(polys)
                    .map_err(|e| parse_err(n, format!("invalid vector polynomial: {e}")))?,
                error,
                samples_used,
                // Provenance is runtime-only: reloaded regions restart at 0.
                revision: 0,
            });
        }
        model.insert_submodel(
            flags,
            PiecewiseModel::new(space.clone(), regions, total_samples),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_mat::stats::Summary;

    fn sample_summary(p: &[usize]) -> Summary {
        let x = p[0] as f64;
        let y = p.get(1).map(|&v| v as f64).unwrap_or(1.0);
        let median = 500.0 + x * y * 0.3 + x * 2.0;
        Summary {
            min: median * 0.9,
            mean: median,
            median,
            max: median * 1.2,
            std_dev: median * 0.05,
            count: 8,
        }
    }

    fn build_model() -> RoutineModel {
        let space = Region::new(vec![8, 8], vec![1024, 1024]);
        let samples: Vec<(Vec<usize>, Summary)> = space
            .sample_grid(5, 8)
            .into_iter()
            .map(|p| {
                let s = sample_summary(&p);
                (p, s)
            })
            .collect();
        let rm = RegionModel::fit(space.clone(), &samples, 2).unwrap();
        let pw = PiecewiseModel::new(space.clone(), vec![rm], samples.len());
        let mut model = RoutineModel::new(
            Routine::Trsm,
            "hpt+openblas-like+1t",
            Locality::InCache,
            space,
        );
        model.insert_submodel(vec![0, 0, 0], pw.clone());
        model.insert_submodel(vec![1, 1, 0], pw);
        model
    }

    #[test]
    fn insert_and_lookup() {
        let mut repo = ModelRepository::new();
        assert!(repo.is_empty());
        repo.insert(build_model());
        assert_eq!(repo.len(), 1);
        assert!(repo
            .get(Routine::Trsm, "hpt+openblas-like+1t", Locality::InCache)
            .is_some());
        assert!(repo
            .get(Routine::Trsm, "hpt+openblas-like+1t", Locality::OutOfCache)
            .is_none());
        assert!(repo
            .get(Routine::Gemm, "hpt+openblas-like+1t", Locality::InCache)
            .is_none());
        assert!(repo.total_samples() > 0);
        assert_eq!(repo.iter().count(), 1);
    }

    #[test]
    fn merge_combines_and_overwrites() {
        let mut a = ModelRepository::new();
        a.insert(build_model());
        let mut gemm_model = build_model();
        gemm_model.routine = Routine::Gemm;
        let mut b = ModelRepository::new();
        b.insert(gemm_model);
        // A fresh Trsm model in `b` must overwrite the one in `a`.
        let mut replacement = build_model();
        replacement.insert_submodel(vec![0, 1, 0], replacement.submodels[&vec![0, 0, 0]].clone());
        let replacement_count = replacement.submodel_count();
        b.insert(replacement);
        a.merge(b);
        assert_eq!(a.len(), 2);
        let merged = a
            .get(Routine::Trsm, "hpt+openblas-like+1t", Locality::InCache)
            .unwrap();
        assert_eq!(merged.submodel_count(), replacement_count);
        assert!(a
            .get(Routine::Gemm, "hpt+openblas-like+1t", Locality::InCache)
            .is_some());
    }

    #[test]
    fn text_roundtrip_preserves_predictions() {
        let mut repo = ModelRepository::new();
        repo.insert(build_model());
        let text = repo.to_text().unwrap();
        assert!(text.starts_with(FORMAT_HEADER));
        let reloaded = ModelRepository::from_text(&text).unwrap();
        assert_eq!(reloaded.len(), 1);
        let original = repo
            .get(Routine::Trsm, "hpt+openblas-like+1t", Locality::InCache)
            .unwrap();
        let restored = reloaded
            .get(Routine::Trsm, "hpt+openblas-like+1t", Locality::InCache)
            .unwrap();
        let call = dla_blas::Call::trsm(
            dla_blas::Side::Left,
            dla_blas::Uplo::Lower,
            dla_blas::Trans::NoTrans,
            dla_blas::Diag::NonUnit,
            300,
            700,
            1.0,
        );
        let a = original.estimate(&call).unwrap();
        let b = restored.estimate(&call).unwrap();
        assert!((a.median - b.median).abs() < 1e-6 * a.median.abs());
        assert!((a.max - b.max).abs() < 1e-6 * a.max.abs());
        assert_eq!(original.submodel_count(), restored.submodel_count());
    }

    #[test]
    fn file_roundtrip() {
        let mut repo = ModelRepository::new();
        repo.insert(build_model());
        let dir = std::env::temp_dir().join("dlaperf-repo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.txt");
        repo.save_file(&path).unwrap();
        let loaded = ModelRepository::load_file(&path).unwrap();
        assert_eq!(loaded.len(), repo.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_errors_name_the_offending_path() {
        let dir = std::env::temp_dir().join("dlaperf-repo-patherr-test");
        std::fs::create_dir_all(&dir).unwrap();

        // Missing file: the I/O error names the path.
        let missing = dir.join("no-such-repo.txt");
        let err = ModelRepository::load_file(&missing).unwrap_err();
        assert!(matches!(err, ModelError::Io(ref m) if m.contains("no-such-repo.txt")));
        let err = ModelRepository::load_file_compiled(&missing).unwrap_err();
        assert!(matches!(err, ModelError::Io(ref m) if m.contains("no-such-repo.txt")));

        // Corrupt file: the parse error names the path too.
        let corrupt = dir.join("corrupt-repo.txt");
        std::fs::write(&corrupt, "this is not a repository").unwrap();
        let err = ModelRepository::load_file(&corrupt).unwrap_err();
        assert!(matches!(err, ModelError::Parse(ref m) if m.contains("corrupt-repo.txt")));
        let err = ModelRepository::load_file_compiled(&corrupt).unwrap_err();
        assert!(matches!(err, ModelError::Parse(ref m) if m.contains("corrupt-repo.txt")));

        // Unwritable target: the save error names the path.
        let unwritable = dir.join("not-a-dir").join("repo.txt");
        let repo = ModelRepository::new();
        let err = repo
            .save_file_as(&unwritable, RepositoryFormat::Text)
            .unwrap_err();
        assert!(matches!(err, ModelError::Io(ref m) if m.contains("repo.txt")));
        std::fs::remove_file(&corrupt).ok();
    }

    #[test]
    fn front_door_routes_both_codecs_by_extension_and_magic() {
        let mut repo = ModelRepository::new();
        repo.insert(build_model());
        let dir = std::env::temp_dir().join("dlaperf-repo-frontdoor-test");
        std::fs::create_dir_all(&dir).unwrap();

        // `.dlapb` selects the binary codec on save; load sniffs the magic.
        let bin_path = dir.join("models.dlapb");
        repo.save_file(&bin_path).unwrap();
        let bytes = std::fs::read(&bin_path).unwrap();
        assert!(matches!(
            RepositoryFormat::sniff(&bytes),
            RepositoryFormat::Binary
        ));
        let from_bin = ModelRepository::load_file(&bin_path).unwrap();
        assert_eq!(from_bin.len(), repo.len());

        // A text save of the same repository loads through the same door.
        let text_path = dir.join("models.txt");
        repo.save_file(&text_path).unwrap();
        let text_bytes = std::fs::read(&text_path).unwrap();
        assert!(matches!(
            RepositoryFormat::sniff(&text_bytes),
            RepositoryFormat::Text
        ));
        let from_text = ModelRepository::load_file(&text_path).unwrap();

        // Both codecs reload to the same text serialisation.
        assert_eq!(from_bin.to_text().unwrap(), from_text.to_text().unwrap());

        // Binary shards also load straight into the compiled form.
        let compiled = ModelRepository::load_file_compiled(&bin_path).unwrap();
        assert_eq!(compiled.source().len(), repo.len());

        // An explicitly chosen codec wins over the extension; the sniffing
        // loader still gets it right.
        let explicit = dir.join("models.model");
        repo.save_file_as(&explicit, RepositoryFormat::Binary)
            .unwrap();
        let sniffed = ModelRepository::load_file(&explicit).unwrap();
        assert_eq!(sniffed.to_text().unwrap(), from_bin.to_text().unwrap());

        std::fs::remove_file(&bin_path).ok();
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&explicit).ok();
    }

    #[test]
    fn for_path_picks_the_codec_by_extension() {
        use std::path::Path;
        for (path, want_binary) in [
            ("models.dlapb", true),
            ("models.bin", true),
            ("dir.dlapb/models.txt", false),
            ("models.txt", false),
            ("models", false),
        ] {
            let got = RepositoryFormat::for_path(Path::new(path));
            assert_eq!(
                matches!(got, RepositoryFormat::Binary),
                want_binary,
                "{path}"
            );
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(ModelRepository::from_text("").is_err());
        assert!(ModelRepository::from_text("wrong header\n").is_err());
        let bad = format!("{FORMAT_HEADER}\nnot a model line\n");
        assert!(ModelRepository::from_text(&bad).is_err());
        let truncated = format!("{FORMAT_HEADER}\nmodel dtrsm machine m locality in-cache dim 2\n");
        assert!(ModelRepository::from_text(&truncated).is_err());
        let bad_routine = format!(
            "{FORMAT_HEADER}\nmodel dxyz machine m locality in-cache dim 2\nspace 8 8 16 16\nend_model\n"
        );
        assert!(ModelRepository::from_text(&bad_routine).is_err());
    }

    #[test]
    fn empty_repository_roundtrip() {
        let repo = ModelRepository::new();
        let text = repo.to_text().unwrap();
        let reloaded = ModelRepository::from_text(&text).unwrap();
        assert!(reloaded.is_empty());
    }

    #[test]
    fn merge_is_submodel_granular_across_disjoint_flag_variants() {
        // Regression: `merge` used to overwrite the whole RoutineModel on a
        // key collision, silently dropping flag variants built elsewhere.
        // Two repositories holding *disjoint* flag variants of the same
        // routine must merge into one model holding both.
        let full = build_model(); // holds [0,0,0] and [1,1,0]
        let mut only_left = full.clone();
        only_left.submodels.retain(|k, _| k == &vec![0, 0, 0]);
        let mut only_right = full.clone();
        only_right.submodels.retain(|k, _| k == &vec![1, 1, 0]);

        let mut a = ModelRepository::new();
        a.insert(only_left);
        let mut b = ModelRepository::new();
        b.insert(only_right);
        a.merge_models(b);

        let merged = a
            .get(Routine::Trsm, "hpt+openblas-like+1t", Locality::InCache)
            .unwrap();
        assert_eq!(merged.submodel_count(), 2);
        assert!(merged.submodel(&[0, 0, 0]).is_some());
        assert!(merged.submodel(&[1, 1, 0]).is_some());

        // Colliding flag variants are replaced by the incoming side.
        let mut replacement = full.clone();
        replacement.submodels.retain(|k, _| k == &vec![0, 0, 0]);
        for sub in replacement.submodels.values_mut() {
            sub.total_samples += 999;
        }
        let incoming_samples = replacement.submodels[&vec![0, 0, 0]].total_samples;
        let mut c = ModelRepository::new();
        c.insert(replacement);
        a.merge_models(c);
        let merged = a
            .get(Routine::Trsm, "hpt+openblas-like+1t", Locality::InCache)
            .unwrap();
        assert_eq!(merged.submodel_count(), 2);
        assert_eq!(
            merged.submodel(&[0, 0, 0]).unwrap().total_samples,
            incoming_samples
        );
    }

    #[test]
    fn merge_from_takes_the_space_envelope() {
        let mut base = build_model();
        let mut wider = build_model();
        wider.space = Region::new(vec![4, 8], vec![2048, 512]);
        base.merge_from(wider);
        assert_eq!(base.space, Region::new(vec![4, 8], vec![2048, 1024]));
    }

    #[test]
    fn whitespace_machine_ids_are_rejected_at_serialisation() {
        // Regression: a machine id containing whitespace used to serialise
        // fine and then fail (or mis-parse) on reload, because the model
        // header is whitespace-tokenised.
        for bad_id in ["two words", "tab\tseparated", "trailing ", ""] {
            let mut model = build_model();
            model.machine_id = bad_id.to_string();
            let mut repo = ModelRepository::new();
            repo.insert(model);
            let err = repo.to_text();
            assert!(
                matches!(err, Err(ModelError::Serialize(_))),
                "id {bad_id:?} must be rejected, got {err:?}"
            );
            let dir = std::env::temp_dir().join("dlaperf-repo-badid-test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("models.txt");
            assert!(matches!(
                repo.save_file(&path),
                Err(ModelError::Serialize(_))
            ));
        }
    }

    #[test]
    fn duplicate_model_headers_are_a_parse_error_with_line_number() {
        // Regression: duplicate (routine, machine, locality) models in one
        // file used to be silently collapsed by `repo.insert`.
        let mut repo = ModelRepository::new();
        repo.insert(build_model());
        let once = repo.to_text().unwrap();
        let body = once
            .strip_prefix(FORMAT_HEADER)
            .unwrap()
            .trim_start_matches('\n');
        let twice = format!("{FORMAT_HEADER}\n{body}{body}");
        let err = ModelRepository::from_text(&twice).unwrap_err();
        match err {
            ModelError::Parse(msg) => {
                assert!(msg.contains("duplicate model"), "{msg}");
                // The duplicate header sits right after the first model's
                // body: line 1 is the format header, the first model spans
                // `body` lines, so the offending line is 2 + body-line-count.
                let body_lines = body.lines().count();
                assert!(
                    msg.contains(&format!("line {}", body_lines + 2)),
                    "expected line {} in '{msg}'",
                    body_lines + 2
                );
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = ModelRepository::load_file(Path::new("/nonexistent/dlaperf-models.txt"));
        assert!(matches!(err, Err(ModelError::Io(_))));
    }
}
