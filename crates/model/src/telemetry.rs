//! Serving telemetry: which regions answer queries, and where refinement
//! should spend its next samples.
//!
//! The paper's core idea is *error-driven* sampling: measure where the model
//! is wrong, not everywhere.  Offline, that drives Adaptive Refinement; the
//! types in this module carry the same signal **online**, from the serving
//! layer back to the Modeler.  The serving layer counts, per `(routine,
//! flags, region)` cell, how many queries each region answered (the compiled
//! evaluators report the answering region at zero extra cost, and the counts
//! are plain relaxed atomics on the hot path).  A [`RefinementReport`]
//! snapshots those counters and ranks the cells by `queries × fit_error` —
//! the regions that are both *hot* (queried a lot) and *bad* (large recorded
//! fit error) come first, and an online refiner can re-sample exactly those
//! through the normal fit fast paths.
//!
//! The report is a plain value: producing it does not pause serving, and
//! consuming it requires nothing but a model repository snapshot.
//!
//! The counters themselves live here too ([`TelemetryCounters`]), built on
//! the [`crate::sync`] facade so the model checker can drive them under
//! `--cfg interleave`.

use std::cmp::Ordering;

use dla_blas::Routine;
use dla_machine::Locality;

use crate::piecewise::error_order;
use crate::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use crate::sync::Arc;
use crate::Region;

/// One repository generation's per-region query counters.
///
/// Each slot is an individually `Arc`'d relaxed counter so a serving cache
/// entry can hold a direct handle on the counter of the region that answered
/// it — the cache-hit telemetry path is then a single relaxed increment with
/// no lock and no lookup.  The block is rebuilt from scratch for every
/// repository generation (counters are *per-generation* by design: a rebuilt
/// region must re-earn its place in the next report).
#[derive(Debug)]
pub struct TelemetryCounters {
    counters: Vec<Arc<AtomicU64>>,
}

impl TelemetryCounters {
    /// A block of `len` zeroed counters.
    pub fn new(len: usize) -> TelemetryCounters {
        TelemetryCounters {
            counters: (0..len).map(|_| Arc::new(AtomicU64::new(0))).collect(),
        }
    }

    /// Number of counter slots.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` when the block has no slots.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The counter handle of `slot`, if it exists.  Cloning the returned
    /// `Arc` is how cache entries keep a region's counter alive across their
    /// own lifetime.
    pub fn handle(&self, slot: usize) -> Option<&Arc<AtomicU64>> {
        self.counters.get(slot)
    }

    /// The current count of `slot` (0 for out-of-range slots).
    pub fn count(&self, slot: usize) -> u64 {
        // ordering: Relaxed — each counter is an independent statistic; the
        // report consumer needs magnitudes, not a cross-counter snapshot, and
        // the generation check above the report provides the only ordering
        // that matters (counters of a dead generation are never read).
        self.counters
            .get(slot)
            .map_or(0, |c| c.load(AtomicOrdering::Relaxed))
    }

    /// The hot-path increment: a relaxed load + store, **deliberately not an
    /// RMW**.  A lock-prefixed `fetch_add` costs several times more than the
    /// rest of a cache hit combined, and a concurrently lost increment only
    /// perturbs a best-effort statistic (the refinement ranking needs
    /// magnitudes, not exact counts).
    pub fn bump_lossy(counter: &AtomicU64) {
        // ordering: Relaxed on both halves — no other memory depends on this
        // value; see the method docs for why losing an increment is fine.
        counter.store(
            counter.load(AtomicOrdering::Relaxed) + 1,
            AtomicOrdering::Relaxed,
        );
    }

    /// The cold-path increment: a real `fetch_add`.  Misses already pay a
    /// model evaluation, so the exact (never-lost) count is free here.
    pub fn bump_exact(counter: &AtomicU64) {
        // ordering: Relaxed — the count is a standalone statistic; only the
        // atomicity of the RMW matters, not its ordering.
        counter.fetch_add(1, AtomicOrdering::Relaxed);
    }
}

/// One queried `(routine, flags, region)` cell of a [`RefinementReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct HotRegion {
    /// The routine whose model answered.
    pub routine: Routine,
    /// The submodel key (flag combination) that answered.
    pub flags: Vec<usize>,
    /// The answering region's bounds (raw parameter-space coordinates).
    pub region: Region,
    /// The region's recorded fit error (`NaN` for degenerate fits).
    pub fit_error: f64,
    /// The region's provenance counter at serving time (see
    /// [`RegionModel::revision`](crate::RegionModel::revision)).
    pub revision: u32,
    /// Number of queries this region answered since the served repository
    /// generation was installed.
    pub queries: u64,
}

impl HotRegion {
    /// The ranking score: `queries × fit_error`.
    ///
    /// `NaN` fit errors (degenerate fits) rank *above* every finite score —
    /// a region that answers real traffic with a degenerate fit is the most
    /// urgent thing to rebuild.
    pub fn priority(&self) -> f64 {
        self.queries as f64 * self.fit_error
    }
}

/// A ranked snapshot of the serving layer's per-region telemetry.
///
/// Cells are ordered hottest-first: descending [`HotRegion::priority`], with
/// `NaN` fit errors first and ties broken by query count (then by flags and
/// region bounds, so the order is deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementReport {
    /// The machine configuration the served models describe.
    pub machine_id: String,
    /// The served memory-locality scenario.
    pub locality: Locality,
    /// The repository generation the counters belong to.  A report is only
    /// actionable against the snapshot of the same generation; after a
    /// swap/merge the serving layer starts fresh counters.
    pub generation: u64,
    /// Total queries answered (sum over all cells, including unreported
    /// zero-query regions' zero contribution).
    pub total_queries: u64,
    /// The queried cells, hottest first.
    pub cells: Vec<HotRegion>,
}

impl RefinementReport {
    /// An empty report (no telemetry observed for `generation`).
    pub fn empty(machine_id: String, locality: Locality, generation: u64) -> RefinementReport {
        RefinementReport {
            machine_id,
            locality,
            generation,
            total_queries: 0,
            cells: Vec::new(),
        }
    }

    /// Sorts `cells` hottest-first and wraps them into a report.
    pub fn ranked(
        machine_id: String,
        locality: Locality,
        generation: u64,
        total_queries: u64,
        mut cells: Vec<HotRegion>,
    ) -> RefinementReport {
        cells.sort_by(rank_order);
        RefinementReport {
            machine_id,
            locality,
            generation,
            total_queries,
            cells,
        }
    }

    /// Returns `true` when no cell was queried.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The `n` hottest cells.
    pub fn top(&self, n: usize) -> &[HotRegion] {
        &self.cells[..n.min(self.cells.len())]
    }
}

/// Hottest-first order: descending priority with `NaN` fit errors ranked
/// above all finite scores, then more-queried first, then a deterministic
/// structural tie-break.
fn rank_order(a: &HotRegion, b: &HotRegion) -> Ordering {
    // `error_order` sorts ascending with NaN last; reversing it yields the
    // descending-with-NaN-first order the ranking needs.
    error_order(a.priority(), b.priority())
        .reverse()
        .then_with(|| b.queries.cmp(&a.queries))
        .then_with(|| (a.routine as u32).cmp(&(b.routine as u32)))
        .then_with(|| a.flags.cmp(&b.flags))
        .then_with(|| a.region.lo().cmp(b.region.lo()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(queries: u64, fit_error: f64, lo: usize) -> HotRegion {
        HotRegion {
            routine: Routine::Gemm,
            flags: vec![0, 0],
            region: Region::new(vec![lo], vec![lo + 64]),
            fit_error,
            revision: 0,
            queries,
        }
    }

    #[test]
    fn ranking_is_priority_descending_with_nan_first() {
        let report = RefinementReport::ranked(
            "m".to_string(),
            Locality::InCache,
            3,
            111,
            vec![
                cell(10, 0.01, 0),
                cell(1, f64::NAN, 64),
                cell(2, 0.5, 128),
                cell(1000, 0.002, 192),
            ],
        );
        assert_eq!(report.generation, 3);
        assert_eq!(report.total_queries, 111);
        assert!(report.cells[0].fit_error.is_nan());
        let priorities: Vec<f64> = report.cells[1..].iter().map(|c| c.priority()).collect();
        assert!(priorities.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(report.top(2).len(), 2);
        assert_eq!(report.top(99).len(), 4);
        assert!(!report.is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let a = cell(4, 0.25, 0);
        let b = cell(4, 0.25, 64);
        let ranked = RefinementReport::ranked(
            "m".to_string(),
            Locality::InCache,
            0,
            8,
            vec![b.clone(), a.clone()],
        );
        assert_eq!(ranked.cells, vec![a, b]);
        assert!(RefinementReport::empty("m".to_string(), Locality::InCache, 0).is_empty());
    }
}
