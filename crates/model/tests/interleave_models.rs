//! Model-checked concurrency invariants of [`SharedRepository`] and the
//! telemetry counter block, explored exhaustively by the vendored
//! `interleave` checker.
//!
//! Only compiled under `--cfg interleave` (the `dla_sync` facade then routes
//! `SharedRepository`'s lock and generation counter through the checker's
//! shim types, so these tests explore the *real* serving code):
//!
//! ```text
//! RUSTFLAGS="--cfg interleave" cargo test -p dla-model --test interleave_models
//! ```
#![cfg(interleave)]

use dla_blas::Routine;
use dla_machine::Locality;
use dla_mat::stats::Summary;
use dla_model::sync::atomic::Ordering;
use dla_model::sync::Arc;
use dla_model::{
    ModelRepository, PiecewiseModel, Region, RegionModel, RoutineModel, SharedRepository,
    TelemetryCounters,
};

fn sample_summary(p: &[usize]) -> Summary {
    let x = p[0] as f64;
    let y = p.get(1).map(|&v| v as f64).unwrap_or(1.0);
    let median = 500.0 + x * y * 0.3 + x * 2.0;
    Summary {
        min: median * 0.9,
        mean: median,
        median,
        max: median * 1.2,
        std_dev: median * 0.05,
        count: 8,
    }
}

/// A one-region, one-submodel repository for `routine` — big enough to be
/// distinguishable from the empty repository, cheap enough to clone into
/// every explored execution.
fn repo_with(routine: Routine) -> ModelRepository {
    let space = Region::new(vec![8, 8], vec![256, 256]);
    let samples: Vec<(Vec<usize>, Summary)> = space
        .sample_grid(4, 8)
        .into_iter()
        .map(|p| {
            let s = sample_summary(&p);
            (p, s)
        })
        .collect();
    let rm = RegionModel::fit(space.clone(), &samples, 2).unwrap();
    let pw = PiecewiseModel::new(space.clone(), vec![rm], samples.len());
    let mut model = RoutineModel::new(routine, "m", Locality::InCache, space);
    model.insert_submodel(vec![0, 0, 0], pw);
    let mut repo = ModelRepository::new();
    repo.insert(model);
    repo
}

fn has(repo: &ModelRepository, routine: Routine) -> bool {
    repo.get(routine, "m", Locality::InCache).is_some()
}

/// Invariant: hot-swap never serves a torn repository.  A reader that
/// observes the same generation before and after taking its compiled handle
/// must hold exactly that generation's repository — in every interleaving
/// and under every allowed weak-memory visibility of the generation tag.
#[test]
fn hot_swap_never_serves_torn_state() {
    let swapped = repo_with(Routine::Trsm);
    interleave::model(|| {
        let shared = Arc::new(SharedRepository::new(ModelRepository::new()));
        let shared2 = Arc::clone(&shared);
        let repo = swapped.clone();
        let writer = interleave::thread::spawn(move || {
            shared2.swap(repo);
        });
        let before = shared.generation();
        let compiled = shared.compiled();
        let after = shared.generation();
        if before == after {
            // An unchanged tag proves no swap completed in between, so the
            // handle must match the tag: generation 0 is the (empty) seed,
            // generation 1 the (non-empty) replacement.
            assert_eq!(
                before == 1,
                !compiled.is_empty(),
                "generation {before} served with the wrong repository"
            );
        }
        writer.join().unwrap();
    });
}

/// Invariant: merge-during-swap linearizes.  Whatever the interleaving, the
/// outcome must be *some* serial order of the two operations: the swapped-in
/// repository always survives (a merge may never resurrect a replaced base),
/// and the merged-in model appears iff the merge serialized after the swap.
#[test]
fn merge_during_swap_linearizes() {
    let swap_repo = repo_with(Routine::Gemm);
    let merge_repo = repo_with(Routine::Trsm);
    interleave::model(|| {
        let shared = Arc::new(SharedRepository::new(ModelRepository::new()));
        let shared2 = Arc::clone(&shared);
        let repo = swap_repo.clone();
        let swapper = interleave::thread::spawn(move || {
            shared2.swap(repo);
        });
        shared.merge(merge_repo.clone());
        swapper.join().unwrap();
        assert_eq!(shared.generation(), 2, "each operation bumps exactly once");
        let final_repo = shared.snapshot();
        assert!(
            has(&final_repo, Routine::Gemm),
            "the swapped-in repository must survive every interleaving"
        );
        // merge-then-swap leaves {gemm}; swap-then-merge (including a merge
        // that started early and redid itself) leaves {gemm, trsm}.
        assert!(
            final_repo.len() == 1 || (final_repo.len() == 2 && has(&final_repo, Routine::Trsm)),
            "not a serialization of swap and merge: {} models",
            final_repo.len()
        );
    });
}

/// Invariant: concurrent merges lose nothing.  The generation-check redo
/// loop must make two racing merges both land, whichever wins the lock.
#[test]
fn concurrent_merges_lose_nothing() {
    let merge_a = repo_with(Routine::Trsm);
    let merge_b = repo_with(Routine::Gemm);
    interleave::model(|| {
        let shared = Arc::new(SharedRepository::new(ModelRepository::new()));
        let shared2 = Arc::clone(&shared);
        let repo = merge_a.clone();
        let merger = interleave::thread::spawn(move || {
            shared2.merge(repo);
        });
        shared.merge(merge_b.clone());
        merger.join().unwrap();
        assert_eq!(shared.generation(), 2);
        let final_repo = shared.snapshot();
        assert!(
            has(&final_repo, Routine::Trsm) && has(&final_repo, Routine::Gemm),
            "a racing merge was lost"
        );
    });
}

/// Invariant: a cache entry's counter handle outlives its generation.  A
/// serving cache entry clones the `Arc` of its region's counter; dropping
/// the generation's whole counter block while the entry still counts must be
/// safe in every interleaving, and the count must land.
#[test]
fn counter_handles_outlive_their_generation() {
    interleave::model(|| {
        let block = TelemetryCounters::new(1);
        let handle = Arc::clone(block.handle(0).unwrap());
        let entry = interleave::thread::spawn(move || {
            // The cache-hit path of a stale entry: one lossy increment.
            TelemetryCounters::bump_lossy(&handle);
            handle.load(Ordering::Relaxed)
        });
        // The generation dies (swap dropped the resolver's telemetry) while
        // the cache entry above still holds its counter.
        drop(block);
        let counted = entry.join().unwrap();
        assert_eq!(counted, 1, "the stale entry's increment must land");
    });
}
