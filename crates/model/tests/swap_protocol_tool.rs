//! Test-of-the-tool: prove the `interleave` checker actually catches the
//! bug class the ordering audit guards against.
//!
//! `SharedRepository::swap` publishes a new repository and then bumps the
//! generation tag with `Ordering::Release`, pairing with the `Acquire` load
//! in `generation()` (see the `// ordering:` comments in
//! `crates/model/src/shared.rs`).  Here we model that publish protocol on
//! bare atomics, *seed the exact weakening a careless refactor could
//! introduce* — demoting the generation store to `Relaxed` — and assert the
//! checker reports a violation, while the real `Release` protocol verifies
//! clean and exhaustively.
//!
//! Unlike the `#![cfg(interleave)]` model suites, this file compiles under
//! the normal cfg, so tier-1 `cargo test` re-validates the tool itself on
//! every run.

use interleave::sync::atomic::{AtomicU64, Ordering};
use interleave::sync::Arc;
use interleave::{Outcome, ViolationKind};

/// The swap publish protocol on bare atomics: install the repository slot,
/// then publish the generation tag with `publish` ordering.  The reader is
/// `generation()`'s contract: observing tag 1 must imply seeing the
/// repository installed before the bump.
fn check_generation_publish(publish: Ordering) -> Outcome {
    interleave::check(move || {
        // Stands in for the compiled-repository slot (0 = seed, 42 = new).
        let repository = Arc::new(AtomicU64::new(0));
        let generation = Arc::new(AtomicU64::new(0));
        let (repo2, gen2) = (Arc::clone(&repository), Arc::clone(&generation));
        let swapper = interleave::thread::spawn(move || {
            repo2.store(42, Ordering::Relaxed);
            gen2.store(1, publish);
        });
        if generation.load(Ordering::Acquire) == 1 {
            assert_eq!(
                repository.load(Ordering::Relaxed),
                42,
                "observed the new generation tag without its repository"
            );
        }
        swapper.join().unwrap();
    })
}

/// The seeded weakening: a `Relaxed` generation publish lets a reader see
/// the new tag before the repository it names — and the checker must find
/// that interleaving-plus-visibility rather than rubber-stamp it.
#[test]
fn relaxed_generation_publish_is_caught() {
    let outcome = check_generation_publish(Ordering::Relaxed);
    let violation = outcome
        .violation
        .expect("the checker must catch the torn publish under Relaxed");
    assert_eq!(violation.kind, ViolationKind::Panic);
    assert!(
        violation.message.contains("without its repository"),
        "unexpected violation: {}",
        violation.message
    );
}

/// The real protocol: a `Release` publish paired with the `Acquire` read is
/// clean across the *entire* explored space (no truncation), which is what
/// entitles `shared.rs` to its `// ordering:` justifications.
#[test]
fn release_generation_publish_is_exhaustively_clean() {
    let outcome = check_generation_publish(Ordering::Release);
    assert!(
        outcome.violation.is_none(),
        "release publish must be race-free: {:?}",
        outcome.violation
    );
    assert!(!outcome.truncated, "exploration must be exhaustive");
    assert!(
        outcome.executions > 1,
        "more than one interleaving explored"
    );
}
